// Property-based testing: a randomized operation sequence is applied both to
// HopsFS (through different namenodes) and to a trivial in-memory reference
// file system; observable state must match at every checkpoint. Parameterized
// over seeds and namenode-selection policies.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hopsfs/mini_cluster.h"
#include "util/rng.h"

namespace hops::fs {
namespace {

// The reference model: a plain tree.
class RefFs {
 public:
  struct Node {
    bool is_dir;
    int64_t size = 0;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  RefFs() { root_.is_dir = true; }

  bool Mkdirs(const std::string& path) {
    Node* cur = &root_;
    for (const auto& part : Split(path)) {
      auto& slot = cur->children[part];
      if (!slot) {
        slot = std::make_unique<Node>();
        slot->is_dir = true;
      }
      if (!slot->is_dir) return false;
      cur = slot.get();
    }
    return true;
  }

  bool CreateFile(const std::string& path, int64_t size) {
    auto [parent, name] = Locate(path);
    if (parent == nullptr || !parent->is_dir || parent->children.count(name)) return false;
    auto node = std::make_unique<Node>();
    node->is_dir = false;
    node->size = size;
    parent->children[name] = std::move(node);
    return true;
  }

  bool Delete(const std::string& path, bool recursive) {
    auto [parent, name] = Locate(path);
    if (parent == nullptr) return false;
    auto it = parent->children.find(name);
    if (it == parent->children.end()) return false;
    if (it->second->is_dir && !it->second->children.empty() && !recursive) return false;
    parent->children.erase(it);
    return true;
  }

  bool Rename(const std::string& src, const std::string& dst) {
    if (IsPrefixPath(src, dst)) return false;
    auto [sp, sname] = Locate(src);
    if (sp == nullptr || !sp->children.count(sname)) return false;
    auto [dp, dname] = Locate(dst);
    if (dp == nullptr || !dp->is_dir || dp->children.count(dname)) return false;
    dp->children[dname] = std::move(sp->children[sname]);
    sp->children.erase(sname);
    return true;
  }

  // (name, is_dir, size) triples of a directory listing, or nullopt.
  std::optional<std::vector<std::tuple<std::string, bool, int64_t>>> List(
      const std::string& path) {
    Node* node = Find(path);
    if (node == nullptr) return std::nullopt;
    std::vector<std::tuple<std::string, bool, int64_t>> out;
    if (!node->is_dir) return out;
    for (const auto& [name, child] : node->children) {
      out.emplace_back(name, child->is_dir, child->size);
    }
    return out;
  }

  bool Exists(const std::string& path) { return Find(path) != nullptr; }

  // Every path in the tree, for full-state comparison.
  void AllPaths(std::vector<std::string>& out) const {
    std::string cur;
    Walk(&root_, cur, out);
  }

 private:
  static std::vector<std::string> Split(const std::string& path) {
    return *SplitPath(path);
  }

  Node* Find(const std::string& path) {
    Node* cur = &root_;
    for (const auto& part : Split(path)) {
      if (!cur->is_dir) return nullptr;
      auto it = cur->children.find(part);
      if (it == cur->children.end()) return nullptr;
      cur = it->second.get();
    }
    return cur;
  }

  std::pair<Node*, std::string> Locate(const std::string& path) {
    auto parts = Split(path);
    if (parts.empty()) return {nullptr, ""};
    Node* cur = &root_;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      if (!cur->is_dir) return {nullptr, ""};
      auto it = cur->children.find(parts[i]);
      if (it == cur->children.end()) return {nullptr, ""};
      cur = it->second.get();
    }
    return {cur->is_dir ? cur : nullptr, parts.back()};
  }

  static void Walk(const Node* node, std::string& cur, std::vector<std::string>& out) {
    for (const auto& [name, child] : node->children) {
      size_t len = cur.size();
      cur += '/';
      cur += name;
      out.push_back(cur);
      if (child->is_dir) Walk(child.get(), cur, out);
      cur.resize(len);
    }
  }

  Node root_;
};

struct PropertyParam {
  uint64_t seed;
  NamenodePolicy policy;
};

class PropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.num_namenodes = 3;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  void CompareFullState(Client& client, RefFs& ref) {
    std::vector<std::string> paths;
    ref.AllPaths(paths);
    // Every model path exists in HopsFS with matching type/size.
    for (const auto& path : paths) {
      auto st = client.Stat(path);
      ASSERT_TRUE(st.ok()) << path << " missing in HopsFS";
      auto listing = ref.List(path);
    }
    // Every HopsFS path exists in the model (walk via listings).
    std::vector<std::string> frontier{"/"};
    while (!frontier.empty()) {
      std::string dir = frontier.back();
      frontier.pop_back();
      auto listing = client.List(dir);
      ASSERT_TRUE(listing.ok()) << dir;
      auto ref_listing = ref.List(dir == "/" ? "/" : dir);
      ASSERT_TRUE(ref_listing.has_value()) << dir;
      ASSERT_EQ(listing->size(), ref_listing->size()) << "listing mismatch in " << dir;
      for (size_t i = 0; i < listing->size(); ++i) {
        const FileStatus& got = (*listing)[i];
        const auto& [name, is_dir, size] = (*ref_listing)[i];
        EXPECT_EQ(got.name, name) << dir;
        EXPECT_EQ(got.is_dir, is_dir) << dir << "/" << name;
        if (!is_dir) EXPECT_EQ(got.size, size) << dir << "/" << name;
        if (is_dir) frontier.push_back(dir == "/" ? "/" + name : dir + "/" + name);
      }
    }
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_P(PropertyTest, RandomOpsMatchReferenceModel) {
  const PropertyParam param = GetParam();
  Rng rng(param.seed);
  RefFs ref;
  Client client = cluster_->NewClient(param.policy, "prop", param.seed);

  // A small pool of path components keeps collisions (and thus interesting
  // error paths) frequent.
  const std::vector<std::string> names = {"a", "b", "c", "d", "e"};
  auto random_path = [&](int max_depth) {
    int depth = static_cast<int>(rng.Range(1, max_depth));
    std::string path;
    for (int i = 0; i < depth; ++i) {
      path += '/';
      path += names[rng.Below(names.size())];
    }
    return path;
  };

  for (int step = 0; step < 220; ++step) {
    int op = static_cast<int>(rng.Below(6));
    std::string p1 = random_path(4);
    switch (op) {
      case 0: {  // mkdirs
        bool ref_ok = ref.Mkdirs(p1);
        auto st = client.Mkdirs(p1);
        EXPECT_EQ(st.ok(), ref_ok) << "mkdirs " << p1 << ": " << st.ToString();
        break;
      }
      case 1: {  // create (one block of a random size)
        int64_t size = rng.Range(0, 1000);
        bool ref_ok = ref.CreateFile(p1, size);
        hops::Status st = client.CreateFile(p1);
        if (st.ok()) {
          if (size > 0) ASSERT_TRUE(client.AddBlock(p1, size).ok());
          ASSERT_TRUE(client.CompleteFile(p1).ok());
        }
        EXPECT_EQ(st.ok(), ref_ok) << "create " << p1 << ": " << st.ToString();
        break;
      }
      case 2: {  // delete (sometimes recursive)
        bool recursive = rng.Chance(0.5);
        bool ref_ok = ref.Delete(p1, recursive);
        auto st = client.Delete(p1, recursive);
        EXPECT_EQ(st.ok(), ref_ok)
            << "delete " << p1 << " r=" << recursive << ": " << st.ToString();
        break;
      }
      case 3: {  // rename
        std::string p2 = random_path(4);
        if (p1 == p2) break;
        bool ref_ok = ref.Rename(p1, p2);
        auto st = client.Rename(p1, p2);
        EXPECT_EQ(st.ok(), ref_ok)
            << "rename " << p1 << " -> " << p2 << ": " << st.ToString();
        break;
      }
      case 4: {  // stat
        bool ref_ok = ref.Exists(p1);
        EXPECT_EQ(client.Stat(p1).ok(), ref_ok) << "stat " << p1;
        break;
      }
      case 5: {  // list
        auto ref_listing = ref.List(p1);
        auto listing = client.List(p1);
        EXPECT_EQ(listing.ok(), ref_listing.has_value()) << "list " << p1;
        break;
      }
    }
    if (step % 55 == 54) CompareFullState(client, ref);
  }
  CompareFullState(client, ref);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, PropertyTest,
    ::testing::Values(PropertyParam{1, NamenodePolicy::kSticky},
                      PropertyParam{2, NamenodePolicy::kRoundRobin},
                      PropertyParam{3, NamenodePolicy::kRandom},
                      PropertyParam{4, NamenodePolicy::kRoundRobin},
                      PropertyParam{5, NamenodePolicy::kSticky}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const char* policy = info.param.policy == NamenodePolicy::kSticky ? "Sticky"
                           : info.param.policy == NamenodePolicy::kRoundRobin
                               ? "RoundRobin"
                               : "Random";
      return "Seed" + std::to_string(info.param.seed) + policy;
    });

}  // namespace
}  // namespace hops::fs
