// Quickstart: boot an in-process HopsFS cluster (NDB + 2 namenodes + 3
// datanodes), then walk through the core file system API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "hopsfs/mini_cluster.h"

int main() {
  using namespace hops;

  // 1. Start the cluster: a 4-node NDB database (replication 2), two
  //    stateless namenodes, three datanodes.
  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.num_namenodes = 2;
  options.num_datanodes = 3;
  auto cluster_or = fs::MiniCluster::Start(options);
  if (!cluster_or.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 cluster_or.status().ToString().c_str());
    return 1;
  }
  auto cluster = *std::move(cluster_or);
  std::printf("cluster up: %d namenodes over a %u-node NDB cluster (leader: nn id %lld)\n",
              cluster->num_namenodes(), cluster->db().num_datanodes(),
              static_cast<long long>(cluster->leader()->id()));

  // 2. Clients pick namenodes by policy (round-robin here) and retry
  //    transparently if one dies.
  fs::Client client = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "quickstart");

  // 3. Build a small namespace.
  for (const char* dir : {"/user", "/user/alice", "/tmp"}) {
    if (!client.Mkdirs(dir).ok()) return 1;
  }

  // 4. Write a file: create -> allocate blocks -> datanode pipeline -> close.
  if (!client.CreateFile("/user/alice/dataset.csv").ok()) return 1;
  for (int i = 0; i < 3; ++i) {
    auto block = client.AddBlock("/user/alice/dataset.csv", 128 * 1024 * 1024);
    if (!block.ok()) return 1;
    if (!cluster->PipelineWrite(*block).ok()) return 1;  // datanodes ack
    std::printf("  wrote block %lld to datanodes [", static_cast<long long>(block->block_id));
    for (size_t d = 0; d < block->locations.size(); ++d) {
      std::printf("%s%lld", d ? ", " : "", static_cast<long long>(block->locations[d]));
    }
    std::printf("]\n");
  }
  if (!client.CompleteFile("/user/alice/dataset.csv").ok()) return 1;

  // 5. Read it back.
  auto located = client.Read("/user/alice/dataset.csv");
  if (!located.ok()) return 1;
  std::printf("dataset.csv has %zu blocks, first block on %zu datanodes\n",
              located->size(), (*located)[0].locations.size());

  // 6. List, stat, rename, delete.
  auto listing = client.List("/user/alice");
  if (!listing.ok()) return 1;
  for (const auto& entry : *listing) {
    std::printf("  %s %8lld bytes  %s\n", entry.is_dir ? "d" : "-",
                static_cast<long long>(entry.size), entry.path.c_str());
  }
  if (!client.Rename("/user/alice/dataset.csv", "/tmp/dataset.csv").ok()) return 1;
  auto stat = client.Stat("/tmp/dataset.csv");
  if (!stat.ok()) return 1;
  std::printf("after rename: /tmp/dataset.csv size=%lld replication=%lld\n",
              static_cast<long long>(stat->size), static_cast<long long>(stat->replication));

  // 7. Both namenodes serve the same metadata: ask each directly.
  for (int i = 0; i < cluster->num_namenodes(); ++i) {
    auto via = cluster->namenode(i).GetFileInfo("/tmp/dataset.csv");
    std::printf("namenode %d sees /tmp/dataset.csv: %s\n", i,
                via.ok() ? "yes" : via.status().ToString().c_str());
  }

  if (!client.Delete("/tmp/dataset.csv", false).ok()) return 1;
  std::printf("deleted; quickstart done.\n");
  return 0;
}
