// §9 "External Metadata Implications": because HopsFS metadata lives in a
// commodity database instead of namenode heap objects, it can be queried
// ad hoc. This example runs online analytics straight against the metadata
// tables while the file system serves traffic: per-owner usage, largest
// directories, block-size distribution.
//
//   $ ./examples/metadata_analytics
#include <algorithm>
#include <cstdio>
#include <map>

#include "hopsfs/mini_cluster.h"
#include "workload/namespace_gen.h"

int main() {
  using namespace hops;

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.num_namenodes = 2;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);
  fs::Client client = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "app");

  // Build a namespace with several owners.
  wl::NamespaceShape shape;
  shape.top_level_dirs = 6;
  shape.name_length = 12;
  auto ns = wl::PlanNamespace(shape, 600, 5);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  if (!loader.Load(ns, 1.3, 0, 5).ok()) return 1;
  const char* users[] = {"alice", "bob", "carol"};
  for (size_t i = 0; i < ns.files.size(); i += 7) {
    if (!client.SetOwner(ns.files[i], users[i % 3], "users").ok()) return 1;
  }

  // --- Query 1: namespace usage per owner (a full scan, the kind of job
  // HDFS admins write offline image-parsing tools for).
  auto tx = cluster->db().Begin();
  auto rows = *tx->FullTableScan(cluster->schema().inodes);
  std::map<std::string, std::pair<int64_t, int64_t>> by_owner;  // files, bytes
  std::map<int64_t, int64_t> children_of;
  for (const auto& row : rows) {
    fs::Inode inode = fs::InodeFromRow(row);
    if (!inode.is_dir) {
      auto& [files, bytes] = by_owner[inode.owner];
      files++;
      bytes += inode.size;
    }
    children_of[inode.parent_id]++;
  }
  std::printf("namespace usage by owner (SELECT owner, COUNT(*), SUM(size) ...):\n");
  for (const auto& [owner, stats] : by_owner) {
    std::printf("  %-8s %6lld files %10lld bytes\n", owner.c_str(),
                static_cast<long long>(stats.first), static_cast<long long>(stats.second));
  }

  // --- Query 2: fattest directories (GROUP BY parent_id ORDER BY count).
  std::vector<std::pair<int64_t, int64_t>> fat(children_of.begin(), children_of.end());
  std::sort(fat.begin(), fat.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("\ntop directories by child count:\n");
  for (size_t i = 0; i < std::min<size_t>(5, fat.size()); ++i) {
    std::printf("  inode %-6lld %lld children\n", static_cast<long long>(fat[i].first),
                static_cast<long long>(fat[i].second));
  }

  // --- Query 3: block statistics from the normalized block table.
  auto block_rows = *tx->FullTableScan(cluster->schema().blocks);
  int64_t blocks = static_cast<int64_t>(block_rows.size());
  int64_t bytes = 0;
  for (const auto& row : block_rows) bytes += row[fs::col::kBlockBytes].i64();
  std::printf("\nblock table: %lld blocks, %.1f average bytes (paper: ~1.3 blocks/file)\n",
              static_cast<long long>(blocks),
              blocks ? static_cast<double>(bytes) / static_cast<double>(blocks) : 0.0);
  std::printf("blocks per file: %.2f\n",
              static_cast<double>(blocks) / static_cast<double>(ns.files.size()));

  // The file system kept serving while we scanned: prove it.
  if (!client.WriteFile("/while_analytics_ran", 1, 64).ok()) return 1;
  std::printf("\nconcurrent file system write during analytics: ok\n");
  std::printf("(in production Hops, the same tables replicate asynchronously to a\n"
              " MySQL slave / Elasticsearch for free-text search -- §9)\n");
  return 0;
}
