// Tour of the async pipelined batch engine (NDB's executeAsynchPrepare /
// sendPollNdb idiom): stage several independent batches on one transaction,
// let them share one overlapped round-trip window, and watch the round-trip
// counters against the synchronous, chained execution of the same work.
#include <cstdio>
#include <vector>

#include "ndb/cluster.h"

int main() {
  using namespace hops::ndb;

  ClusterConfig cfg;
  cfg.num_datanodes = 8;
  cfg.replication = 2;
  cfg.partitions_per_table = 16;
  Cluster cluster(cfg);

  Schema s;
  s.table_name = "inodes";
  s.columns = {{"parent", ColumnType::kInt64},
               {"name", ColumnType::kString},
               {"id", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  TableId table = *cluster.CreateTable(s);

  {
    auto tx = cluster.Begin();
    for (int64_t parent = 0; parent < 64; ++parent) {
      for (int64_t c = 0; c < 4; ++c) {
        (void)tx->Insert(table, Row{parent, "f" + std::to_string(c), parent * 4 + c});
      }
    }
    (void)tx->Commit();
  }

  auto stage = [&](ReadBatch& batch, int64_t base) {
    for (int64_t k = 0; k < 8; ++k) batch.Get(table, {base + k * 7, "f1"});
  };
  constexpr int kBatches = 6;

  std::printf("six independent 8-key read batches on one transaction\n\n");

  // Synchronous: each Execute is its own round trip, chained.
  cluster.ResetStats();
  {
    auto tx = cluster.Begin();
    for (int64_t b = 0; b < kBatches; ++b) {
      ReadBatch batch;
      stage(batch, b);
      if (!tx->Execute(batch).ok()) return 1;
    }
    (void)tx->Commit();
  }
  auto sync_stats = cluster.StatsSnapshot();
  std::printf("sync Execute        %llu round trips, %llu saved by overlap\n",
              static_cast<unsigned long long>(sync_stats.round_trips),
              static_cast<unsigned long long>(sync_stats.overlapped_round_trips));

  // Pipelined: ExecuteAsync prepares; the first Wait flushes the whole
  // in-flight window as ONE overlapped trip (bounded by
  // ClusterConfig::max_in_flight_batches, default 8).
  cluster.ResetStats();
  {
    auto tx = cluster.Begin();
    std::vector<ReadBatch> batches(kBatches);
    std::vector<PendingBatch> pending;
    for (int64_t b = 0; b < kBatches; ++b) {
      stage(batches[static_cast<size_t>(b)], b);
      pending.push_back(tx->ExecuteAsync(batches[static_cast<size_t>(b)]));
    }
    std::printf("\n%d batches prepared, %zu in flight, 0 executed yet...\n", kBatches,
                tx->InFlightBatches());
    for (auto& p : pending) {
      if (!p.Wait().ok()) return 1;  // the first Wait flushes the window
    }
    // Results read back per batch, exactly as on the synchronous path.
    if (!batches[0].row(0).has_value()) return 1;
    (void)tx->Commit();
  }
  auto pipe_stats = cluster.StatsSnapshot();
  std::printf("pipelined ExecuteAsync  %llu round trip(s), %llu saved by overlap\n",
              static_cast<unsigned long long>(pipe_stats.round_trips),
              static_cast<unsigned long long>(pipe_stats.overlapped_round_trips));

  std::printf("\nthe namenode's heavy consumers of this idiom: subtree quiesce scans\n");
  std::printf("(one in-flight scan batch per directory, level-wide), subtree delete\n");
  std::printf("transactions (inode probes + the per-file fan-out batch in one window),\n");
  std::printf("addBlock/completeFile lease+fan-out overlap, and speculative\n");
  std::printf("getBlockLocations riding the resolution window.\n");
  return 0;
}
