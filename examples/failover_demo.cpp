// Availability demo (§7.6): clients keep working while namenodes are killed
// one by one (no downtime), and while NDB datanodes fail within node-group
// limits; losing a whole node group stops the cluster, restarting a node
// restores it.
//
//   $ ./examples/failover_demo
#include <cstdio>

#include "hopsfs/mini_cluster.h"

int main() {
  using namespace hops;

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;  // two node groups at replication 2
  options.db.replication = 2;
  options.num_namenodes = 3;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);
  fs::Client client = cluster->NewClient(fs::NamenodePolicy::kSticky, "app");

  if (!client.Mkdirs("/service").ok()) return 1;
  if (!client.WriteFile("/service/state", 1, 4096).ok()) return 1;

  auto probe = [&](const char* when) {
    auto st = client.Stat("/service/state");
    bool write_ok = client.WriteFile(std::string("/service/log_") + when, 1, 128).ok();
    std::printf("%-28s read=%s write=%s (client failovers so far: %llu)\n", when,
                st.ok() ? "ok" : st.status().ToString().c_str(), write_ok ? "ok" : "FAIL",
                static_cast<unsigned long long>(client.failovers()));
  };
  probe("all healthy");

  std::printf("\n-- killing namenodes one by one (paper: no downtime) --\n");
  cluster->KillNamenode(0);
  probe("after nn0 died");
  cluster->KillNamenode(1);
  probe("after nn1 died");
  if (!cluster->RestartNamenode(0).ok()) return 1;
  cluster->TickHeartbeats(2);
  std::printf("nn slot 0 restarted with a NEW id: %lld (ids change on restart)\n",
              static_cast<long long>(cluster->namenode(0).id()));
  probe("after nn0 restarted");

  std::printf("\n-- NDB datanode failures (node groups of 2, §7.6.2) --\n");
  cluster->db().KillDatanode(0);
  cluster->db().KillDatanode(2);  // one per group: still available
  std::printf("killed NDB nodes 0 and 2 (one per group); cluster available: %s\n",
              cluster->db().Available() ? "yes" : "no");
  probe("after 2 NDB nodes died");

  cluster->db().KillDatanode(1);  // second member of group 0: group lost
  std::printf("killed NDB node 1 (whole group 0 down); cluster available: %s\n",
              cluster->db().Available() ? "yes" : "no");
  auto st = client.Stat("/service/state");
  std::printf("read now fails with: %s\n", st.status().ToString().c_str());

  cluster->db().RestartDatanode(1);
  std::printf("\nNDB node 1 restarted (node recovery from its group peer)\n");
  probe("after NDB recovery");
  return 0;
}
