// Tour of the metadata engine's batched read path: build a small namespace,
// warm the inode hint cache, and show how a cached path resolution plus the
// block/replica fan-out of a read collapse into a handful of simulated
// database round trips (HopsFS §5.1, §6.3).
#include <cstdio>

#include "hopsfs/mini_cluster.h"

int main() {
  using namespace hops;

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);
  auto client = cluster->NewClient(fs::NamenodePolicy::kSticky, "tour");

  if (!client.Mkdirs("/user/alice/projects/hops").ok()) return 1;
  if (!client.WriteFile("/user/alice/projects/hops/data.csv", /*num_blocks=*/3,
                        /*bytes_per_block=*/64 << 20)
           .ok()) {
    return 1;
  }

  auto report = [&](const char* label, const ndb::ClusterStats& before) {
    auto after = cluster->db().StatsSnapshot();
    std::printf("%-34s %3llu round trips (%llu batched reads, %llu PK reads, "
                "%llu rows)\n",
                label, static_cast<unsigned long long>(after.round_trips - before.round_trips),
                static_cast<unsigned long long>(after.batch_reads - before.batch_reads),
                static_cast<unsigned long long>(after.pk_reads - before.pk_reads),
                static_cast<unsigned long long>(after.rows_read - before.rows_read));
  };

  std::printf("reading /user/alice/projects/hops/data.csv (depth 5, 3 blocks)\n\n");

  // Cold: every path component resolves with its own primary-key read.
  cluster->namenode(0).hint_cache().Clear();
  auto before = cluster->db().StatsSnapshot();
  if (!client.Read("/user/alice/projects/hops/data.csv").ok()) return 1;
  report("cold (recursive resolution):", before);

  // Warm: the hint cache turns the whole resolution into one batched read,
  // and the block + replica scans share a second round trip.
  before = cluster->db().StatsSnapshot();
  auto located = client.Read("/user/alice/projects/hops/data.csv");
  if (!located.ok()) return 1;
  report("warm (hint cache + batching):", before);

  std::printf("\nblocks returned: %zu\n", located->size());
  for (const auto& block : *located) {
    std::printf("  block %lld (%lld bytes) on %zu datanodes\n",
                static_cast<long long>(block.block_id),
                static_cast<long long>(block.num_bytes), block.locations.size());
  }
  return 0;
}
