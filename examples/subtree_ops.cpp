// Demonstrates the subtree operations protocol (§6): a large recursive
// delete executed in parallel batched transactions, a namenode crash in the
// middle of it, and the failure-handling guarantees -- no orphaned inodes,
// lazy lock cleanup, transparent client retry.
//
//   $ ./examples/subtree_ops
#include <atomic>
#include <cstdio>

#include "hopsfs/mini_cluster.h"
#include "workload/namespace_gen.h"

int main() {
  using namespace hops;

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.fs.subtree_delete_batch = 32;
  options.num_namenodes = 3;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);
  fs::Client client = cluster->NewClient(fs::NamenodePolicy::kSticky, "demo");

  // Build a subtree with a few thousand inodes.
  if (!client.Mkdirs("/warehouse").ok()) return 1;
  wl::NamespaceShape shape;
  shape.files_per_dir = 24;
  shape.subdirs_per_dir = 4;
  shape.top_level_dirs = 4;
  shape.name_length = 12;
  auto ns = wl::PlanNamespaceUnder("/warehouse", shape, 2000, 99);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  if (!loader.Load(ns, 1.0, 0, 99).ok()) return 1;
  auto count = [&] { return cluster->db().TableRowCount(cluster->schema().inodes); };
  std::printf("built /warehouse: %zu inodes total\n", count());

  // A move of a non-empty directory is a subtree operation: lock, quiesce,
  // then a single transaction that rewrites only the subtree root's row.
  if (!client.Mkdirs("/archive").ok()) return 1;
  if (!client.Rename("/warehouse", "/archive/warehouse").ok()) return 1;
  std::printf("mv /warehouse /archive/warehouse done; deep path reachable: %s\n",
              client.Stat(ns.files.front().insert(0, "/archive")).ok() ? "yes" : "no");

  // Now crash a namenode part-way through the recursive delete.
  fs::Namenode& doomed = cluster->namenode(2);
  std::atomic<int> batches{0};
  doomed.set_die_at([&](std::string_view point) {
    return point == "subtree:batch" && batches.fetch_add(1) == 6;
  });
  auto st = doomed.Delete("/archive/warehouse", true);
  std::printf("namenode %lld crashed mid-delete (%s); inodes remaining: %zu\n",
              static_cast<long long>(doomed.id()), st.ToString().c_str(), count());

  // Invariant check: post-order deletion means nothing is orphaned.
  {
    auto tx = cluster->db().Begin();
    auto rows = *tx->FullTableScan(cluster->schema().inodes);
    std::map<int64_t, int64_t> parent_of;
    std::set<int64_t> ids;
    for (const auto& row : rows) {
      ids.insert(row[fs::col::kInodeId].i64());
      parent_of[row[fs::col::kInodeId].i64()] = row[fs::col::kInodeParent].i64();
    }
    int orphans = 0;
    for (const auto& [id, parent] : parent_of) {
      if (id != fs::kRootInode && !ids.count(parent)) orphans++;
    }
    std::printf("orphaned inodes after the crash: %d (must be 0)\n", orphans);
    if (orphans != 0) return 1;
  }

  // Surviving namenodes detect the death; the stale subtree lock is lazily
  // cleared and the client's retry finishes the delete elsewhere.
  cluster->TickHeartbeats(4);
  if (!client.Delete("/archive/warehouse", true).ok()) return 1;
  std::printf("client retried the delete on a surviving namenode: %zu inodes left "
              "(/, /archive)\n",
              count());
  std::printf("active subtree operations registered: %zu (must be 0)\n",
              cluster->db().TableRowCount(cluster->schema().active_subtree_ops));
  return 0;
}
