// Runs the paper's Spotify workload mix (Table 1) against a real in-process
// HopsFS cluster with multiple client threads, then prints throughput and
// per-operation latency -- the miniature analogue of §7.2.
//
//   $ ./examples/spotify_workload
#include <cstdio>

#include "workload/driver.h"

int main() {
  using namespace hops;

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.num_namenodes = 3;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);

  // Namespace with the paper's shape statistics (§7.2): ~16 files and 2
  // subdirectories per directory.
  wl::NamespaceShape shape;
  shape.top_level_dirs = 8;
  auto ns = wl::PlanNamespace(shape, 3000, 42);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  auto loaded = loader.Load(ns, 1.3, 0, 42);
  if (!loaded.ok()) return 1;
  std::printf("namespace: %zu dirs, %zu files\n", ns.dirs.size(), ns.files.size());

  auto mix = wl::OpMix::Spotify();
  wl::DriverOptions opts;
  opts.num_threads = 4;
  opts.duration = std::chrono::milliseconds(3000);
  auto report = wl::RunDriver(
      [&](int t) {
        return wl::MakeHopsAdapter(cluster->NewClient(fs::NamenodePolicy::kRoundRobin,
                                                      "worker" + std::to_string(t),
                                                      100 + t));
      },
      ns, mix, opts);

  std::printf("\n%llu ops in %.1fs = %.0f ops/sec (failures: %llu)\n",
              static_cast<unsigned long long>(report.ops), report.wall_seconds,
              report.ops_per_second, static_cast<unsigned long long>(report.failures));
  std::printf("\n%-18s %10s %12s %12s %12s\n", "operation", "count", "mean (us)",
              "p99 (us)", "share %");
  for (const auto& [op, hist] : report.latency) {
    std::printf("%-18s %10llu %12.0f %12.0f %11.2f%%\n",
                std::string(wl::OpTypeName(op)).c_str(),
                static_cast<unsigned long long>(hist.count()), hist.Mean(),
                hist.Percentile(0.99),
                100.0 * static_cast<double>(hist.count()) / static_cast<double>(report.ops));
  }
  std::printf("\n(list/stat/read should account for ~95%% of operations, as in Table 1)\n");
  return 0;
}
