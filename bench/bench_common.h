// Shared setup for the figure/table benchmarks: build a capture cluster,
// bulk-load a namespace with the paper's shape statistics, and record
// database-access trace pools that the simulator replays (see DESIGN.md §2).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/model.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hops::bench {

// --- Machine-readable bench output ------------------------------------------
// When HOPS_BENCH_JSON_DIR is set (the nightly workflow points it at its
// artifact directory), each bench also writes BENCH_<name>.json there --
// flat key -> number metrics mirroring the human-readable table -- so the
// perf trajectory is diffable across runs without scraping stdout. Unset =
// disabled; the bench prints exactly as before.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    const char* dir = std::getenv("HOPS_BENCH_JSON_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
    }
  }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  bool enabled() const { return !path_.empty(); }
  // Keys must be plain identifiers (letters, digits, ._-); values must be
  // finite. Cheap no-op when disabled.
  void Metric(const std::string& key, double value) {
    if (enabled()) metrics_.emplace_back(key, value);
  }

 private:
  void Write() const {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {", name_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.10g", i > 0 ? "," : "", metrics_[i].first.c_str(),
                   metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
  }

  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

struct CaptureEnv {
  std::unique_ptr<hops::fs::MiniCluster> cluster;
  wl::GeneratedNamespace ns;
  wl::TracePools pools;
};

inline CaptureEnv MakeCapture(const wl::OpMix& mix, int64_t files = 8000, int top_dirs = 32,
                              int samples_per_op = 16, const char* hotspot_base = nullptr,
                              uint64_t seed = 11) {
  CaptureEnv env;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 12;  // §7.1 capture topology
  options.db.replication = 2;
  options.db.partitions_per_table = 48;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  env.cluster = *hops::fs::MiniCluster::Start(options);
  wl::NamespaceShape shape;
  shape.top_level_dirs = top_dirs;
  env.ns = hotspot_base != nullptr
               ? wl::PlanNamespaceUnder(hotspot_base, shape, files, seed)
               : wl::PlanNamespace(shape, files, seed);
  if (hotspot_base != nullptr) {
    auto client = env.cluster->NewClient(hops::fs::NamenodePolicy::kSticky, "mk");
    (void)client.Mkdirs(hotspot_base);
  }
  wl::BulkLoader loader(&env.cluster->db(), &env.cluster->schema(),
                        &env.cluster->fs_config());
  auto loaded = loader.Load(env.ns, 1.3, 0, seed);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", loaded.status().ToString().c_str());
    std::abort();
  }
  env.pools = wl::CollectTraces(*env.cluster, env.ns, mix, samples_per_op, seed);
  return env;
}

// Enough closed-loop clients to saturate the configured topology.
inline int SaturatingClients(int num_namenodes) {
  return std::min(6000, std::max(128, num_namenodes * 90));
}

// Trace capture under CONCURRENT handler load: runs the closed-loop driver
// against a namenode with a bounded handler pool (all handler transactions
// sharing the completion mux when `use_mux`), collecting every committed
// transaction's database-access trace. Unlike the sequential CollectTraces
// capture, windows here genuinely merge across transactions, so the traces
// carry co_scheduled windows whose shared trips the DES model costs as max,
// not sum. All traces land in one pool (under OpType::kRead) since the mix
// identity does not matter for the replay cost.
struct HandlerLoadCapture {
  wl::TracePools pools;
  double wall_ops_per_sec = 0;
  uint64_t cross_tx_saved = 0;      // trips merged away across transactions
  uint64_t mux_windows = 0;
  uint64_t mux_rounds = 0;
  uint64_t mux_gather_waits = 0;     // adaptive-gather door-holds
  uint64_t mux_gathered_windows = 0;  // extra windows those waits merged
  double co_scheduled_fraction = 0;  // co-scheduled windows / all flush windows
};

// `adaptive_gather` overrides the mux gather-delay policy for the A/B sweep:
// nullopt leaves MiniCluster's auto resolution (on at >= 4 handlers) in
// charge, an explicit value pins it and disables the auto policy.
inline HandlerLoadCapture CaptureUnderHandlerLoad(
    int num_handlers, bool use_mux, int clients, int64_t ops_per_client, uint64_t seed,
    std::optional<bool> adaptive_gather = std::nullopt) {
  HandlerLoadCapture cap;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.db.use_completion_mux = use_mux;
  if (adaptive_gather.has_value()) {
    options.db.mux_adaptive_gather = *adaptive_gather;
    options.db.mux_adaptive_gather_auto = false;
  }
  options.fs.num_handlers = num_handlers;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  auto cluster = *hops::fs::MiniCluster::Start(options);
  wl::NamespaceShape shape;
  auto ns = wl::PlanNamespace(shape, 1500, seed);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  if (!loader.Load(ns, 1.3, 0, seed).ok()) std::abort();

  std::mutex mu;
  std::vector<wl::OpTrace> traces;
  cluster->namenode(0).SetTraceSink([&](const hops::ndb::CostTrace& trace) {
    std::lock_guard<std::mutex> lock(mu);
    traces.push_back(wl::OpTrace{trace.accesses});
  });
  cluster->db().ResetStats();

  wl::DriverOptions opts;
  opts.num_threads = clients;
  opts.ops_per_thread = ops_per_client;
  opts.seed = seed;
  auto mix = wl::OpMix::Spotify();
  auto report = wl::RunDriver(
      [&](int t) {
        return wl::MakeHopsAdapter(cluster->NewClient(hops::fs::NamenodePolicy::kSticky,
                                                      "cap" + std::to_string(t),
                                                      90 + static_cast<uint64_t>(t)));
      },
      ns, mix, opts);
  cluster->namenode(0).SetTraceSink(nullptr);

  cap.wall_ops_per_sec = report.ops_per_second;
  auto stats = cluster->db().StatsSnapshot();
  cap.cross_tx_saved = stats.cross_tx_overlapped_round_trips;
  cap.mux_windows = stats.mux_windows;
  cap.mux_rounds = stats.mux_rounds;
  cap.mux_gather_waits = stats.mux_gather_waits;
  cap.mux_gathered_windows = stats.mux_gathered_windows;
  uint64_t windows = 0, co_scheduled = 0;
  for (const auto& t : traces) {
    for (const auto& a : t.accesses) {
      if (a.round_trips > 0 && a.kind != hops::ndb::AccessKind::kCommit) windows++;
      if (a.co_scheduled) {
        windows++;
        co_scheduled++;
      }
    }
  }
  cap.co_scheduled_fraction =
      windows > 0 ? static_cast<double>(co_scheduled) / static_cast<double>(windows) : 0;
  cap.pools.num_partitions = cluster->db().num_partitions();
  cap.pools.pools[wl::OpType::kRead] = std::move(traces);
  return cap;
}

}  // namespace hops::bench
