// Shared setup for the figure/table benchmarks: build a capture cluster,
// bulk-load a namespace with the paper's shape statistics, and record
// database-access trace pools that the simulator replays (see DESIGN.md §2).
#pragma once

#include <atomic>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kv/kv.h"
#include "util/clock.h"
#include "sim/model.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hops::bench {

// Which KV backend this bench process runs on: the same HOPS_KV_ENGINE
// override MiniCluster::Start consumes, resolved once so the JSON tag and
// the clusters agree. Default (unset/unparseable) is the paper's 2PL engine.
inline kv::EngineKind BenchEngineKind() {
  return kv::EngineKindFromEnv().value_or(kv::EngineKind::kNdb);
}

// --- Machine-readable bench output ------------------------------------------
// When HOPS_BENCH_JSON_DIR is set (the nightly workflow points it at its
// artifact directory), each bench also writes BENCH_<name>.json there --
// flat key -> number metrics mirroring the human-readable table -- so the
// perf trajectory is diffable across runs without scraping stdout. Unset =
// disabled; the bench prints exactly as before. Runs on a non-default KV
// engine write BENCH_<name>.<engine>.json instead, so per-engine snapshots
// coexist in one results directory, and every file records its engine.
class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)), engine_(kv::EngineKindName(BenchEngineKind())) {
    const char* dir = std::getenv("HOPS_BENCH_JSON_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      path_ = std::string(dir) + "/BENCH_" + name_;
      if (BenchEngineKind() != kv::EngineKind::kNdb) path_ += "." + engine_;
      path_ += ".json";
    }
  }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  bool enabled() const { return !path_.empty(); }
  // Keys must be plain identifiers (letters, digits, ._-); values must be
  // finite. Cheap no-op when disabled.
  void Metric(const std::string& key, double value) {
    if (enabled()) metrics_.emplace_back(key, value);
  }

  // The per-engine concurrency-control counters next to each other: OCC
  // commit-validation conflicts (split point vs phantom) and the 2PL lock
  // pressure they replace. Whichever engine ran, the other side's counters
  // sit at 0, so cross-engine JSON diffs line up key for key.
  void EngineStats(const std::string& prefix, const kv::ClusterStats& stats) {
    Metric(prefix + "occ_conflicts", static_cast<double>(stats.occ_conflicts));
    Metric(prefix + "occ_key_conflicts", static_cast<double>(stats.occ_key_conflicts));
    Metric(prefix + "occ_range_conflicts", static_cast<double>(stats.occ_range_conflicts));
    Metric(prefix + "tx_aborts", static_cast<double>(stats.aborts));
    Metric(prefix + "lock_waits", static_cast<double>(stats.lock_waits));
    Metric(prefix + "lock_timeouts", static_cast<double>(stats.lock_timeouts));
  }

 private:
  void Write() const {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"engine\": \"%s\",\n  \"metrics\": {",
                 name_.c_str(), engine_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.10g", i > 0 ? "," : "", metrics_[i].first.c_str(),
                   metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
  }

  std::string name_;
  std::string engine_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

struct CaptureEnv {
  std::unique_ptr<hops::fs::MiniCluster> cluster;
  wl::GeneratedNamespace ns;
  wl::TracePools pools;
};

inline CaptureEnv MakeCapture(const wl::OpMix& mix, int64_t files = 8000, int top_dirs = 32,
                              int samples_per_op = 16, const char* hotspot_base = nullptr,
                              uint64_t seed = 11) {
  CaptureEnv env;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 12;  // §7.1 capture topology
  options.db.replication = 2;
  options.db.partitions_per_table = 48;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  env.cluster = *hops::fs::MiniCluster::Start(options);
  wl::NamespaceShape shape;
  shape.top_level_dirs = top_dirs;
  env.ns = hotspot_base != nullptr
               ? wl::PlanNamespaceUnder(hotspot_base, shape, files, seed)
               : wl::PlanNamespace(shape, files, seed);
  if (hotspot_base != nullptr) {
    auto client = env.cluster->NewClient(hops::fs::NamenodePolicy::kSticky, "mk");
    (void)client.Mkdirs(hotspot_base);
  }
  wl::BulkLoader loader(&env.cluster->db(), &env.cluster->schema(),
                        &env.cluster->fs_config());
  auto loaded = loader.Load(env.ns, 1.3, 0, seed);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", loaded.status().ToString().c_str());
    std::abort();
  }
  env.pools = wl::CollectTraces(*env.cluster, env.ns, mix, samples_per_op, seed);
  return env;
}

// Enough closed-loop clients to saturate the configured topology.
inline int SaturatingClients(int num_namenodes) {
  return std::min(6000, std::max(128, num_namenodes * 90));
}

// Trace capture under CONCURRENT handler load: runs the closed-loop driver
// against a namenode with a bounded handler pool (all handler transactions
// sharing the completion mux when `use_mux`), collecting every committed
// transaction's database-access trace. Unlike the sequential CollectTraces
// capture, windows here genuinely merge across transactions, so the traces
// carry co_scheduled windows whose shared trips the DES model costs as max,
// not sum. All traces land in one pool (under OpType::kRead) since the mix
// identity does not matter for the replay cost.
struct HandlerLoadCapture {
  wl::TracePools pools;
  double wall_ops_per_sec = 0;
  uint64_t cross_tx_saved = 0;      // trips merged away across transactions
  uint64_t mux_windows = 0;
  uint64_t mux_rounds = 0;
  uint64_t mux_gather_waits = 0;     // adaptive-gather door-holds
  uint64_t mux_gathered_windows = 0;  // extra windows those waits merged
  double co_scheduled_fraction = 0;  // co-scheduled windows / all flush windows
  // Full end-of-run counter snapshot (the engine-ablation sections read the
  // OCC conflict / 2PL lock counters out of this).
  kv::ClusterStats db_stats;
};

// `adaptive_gather` overrides the mux gather-delay policy for the A/B sweep:
// nullopt leaves MiniCluster's auto resolution (on at >= 4 handlers) in
// charge, an explicit value pins it and disables the auto policy.
inline HandlerLoadCapture CaptureUnderHandlerLoad(
    int num_handlers, bool use_mux, int clients, int64_t ops_per_client, uint64_t seed,
    std::optional<bool> adaptive_gather = std::nullopt) {
  HandlerLoadCapture cap;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.db.use_completion_mux = use_mux;
  if (adaptive_gather.has_value()) {
    options.db.mux_adaptive_gather = *adaptive_gather;
    options.db.mux_adaptive_gather_auto = false;
  }
  options.fs.num_handlers = num_handlers;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  auto cluster = *hops::fs::MiniCluster::Start(options);
  wl::NamespaceShape shape;
  auto ns = wl::PlanNamespace(shape, 1500, seed);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  if (!loader.Load(ns, 1.3, 0, seed).ok()) std::abort();

  std::mutex mu;
  std::vector<wl::OpTrace> traces;
  cluster->namenode(0).SetTraceSink([&](const hops::ndb::CostTrace& trace) {
    std::lock_guard<std::mutex> lock(mu);
    traces.push_back(wl::OpTrace{trace.accesses});
  });
  cluster->db().ResetStats();

  wl::DriverOptions opts;
  opts.num_threads = clients;
  opts.ops_per_thread = ops_per_client;
  opts.seed = seed;
  auto mix = wl::OpMix::Spotify();
  auto report = wl::RunDriver(
      [&](int t) {
        return wl::MakeHopsAdapter(cluster->NewClient(hops::fs::NamenodePolicy::kSticky,
                                                      "cap" + std::to_string(t),
                                                      90 + static_cast<uint64_t>(t)));
      },
      ns, mix, opts);
  cluster->namenode(0).SetTraceSink(nullptr);

  cap.wall_ops_per_sec = report.ops_per_second;
  auto stats = cluster->db().StatsSnapshot();
  cap.db_stats = stats;
  cap.cross_tx_saved = stats.cross_tx_overlapped_round_trips;
  cap.mux_windows = stats.mux_windows;
  cap.mux_rounds = stats.mux_rounds;
  cap.mux_gather_waits = stats.mux_gather_waits;
  cap.mux_gathered_windows = stats.mux_gathered_windows;
  uint64_t windows = 0, co_scheduled = 0;
  for (const auto& t : traces) {
    for (const auto& a : t.accesses) {
      if (a.round_trips > 0 && a.kind != hops::ndb::AccessKind::kCommit) windows++;
      if (a.co_scheduled) {
        windows++;
        co_scheduled++;
      }
    }
  }
  cap.co_scheduled_fraction =
      windows > 0 ? static_cast<double>(co_scheduled) / static_cast<double>(windows) : 0;
  cap.pools.num_partitions = cluster->db().num_partitions();
  cap.pools.pools[wl::OpType::kRead] = std::move(traces);
  return cap;
}

// --- Engine ablation: contended create hotspot -------------------------------
// Every client thread creates its files in ONE shared directory, so every
// create transaction validates-and-rewrites the same parent inode row (the
// mtime update). This is the workload where the two engines' concurrency
// control actually diverges: under 2PL the collisions serialize on the row
// lock (lock_waits), under OCC they surface as commit-validation conflicts
// that RunTx absorbs with capped-backoff retries (occ_conflicts). Every
// create still succeeds on both engines; only the counters and the ops/s
// differ.
struct ContendedCreateResult {
  double ops_per_sec = 0;
  uint64_t ops = 0;
  kv::ClusterStats db_stats;
};

inline ContendedCreateResult RunContendedCreates(int threads, int files_per_thread,
                                                 uint64_t seed) {
  ContendedCreateResult res;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.fs.num_handlers = 4;
  options.num_namenodes = 2;
  options.num_datanodes = 3;
  auto cluster = *hops::fs::MiniCluster::Start(options);
  {
    auto mk = cluster->NewClient(hops::fs::NamenodePolicy::kSticky, "mk");
    if (!mk.Mkdirs("/hotspot").ok()) std::abort();
  }
  cluster->db().ResetStats();
  const int64_t start = MonotonicMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto client = cluster->NewClient(hops::fs::NamenodePolicy::kSticky,
                                       "hot" + std::to_string(t),
                                       seed + static_cast<uint64_t>(t));
      for (int i = 0; i < files_per_thread; ++i) {
        hops::Status st = client.CreateFile("/hotspot/t" + std::to_string(t) + "_f" +
                                            std::to_string(i));
        if (!st.ok()) {
          std::fprintf(stderr, "contended create failed: %s\n", st.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall_s = static_cast<double>(MonotonicMicros() - start) / 1e6;
  res.ops = static_cast<uint64_t>(threads) * static_cast<uint64_t>(files_per_thread);
  res.ops_per_sec = wall_s > 0 ? static_cast<double>(res.ops) / wall_s : 0;
  res.db_stats = cluster->db().StatsSnapshot();
  return res;
}

// Deterministic two-claimant probe against the raw kv engine. The FS-level
// hotspot above shows collisions at workload-realistic rates -- transactions
// span microseconds, so two claimants rarely overlap even on a shared row.
// This probe forces one overlap per round with a holder/challenger
// handshake: the holder read-claims (kExclusive) the row, keeps its
// transaction open until the challenger signals that its own claim is
// imminent (plus a short fixed hold covering the signal-to-read stretch),
// and only then commits. The wait is on an atomic flag, not a timer, so
// arbitrary scheduler wake-up delays cannot let the holder slip out before
// the challenger arrives. Under 2PL the challenger's read blocks on the
// held row lock until the holder commits (lock_waits climbs, both commits
// succeed); under OCC neither read blocks, so both claim the same version
// and whichever commit lands second fails validation (occ_conflicts climbs)
// and is retried -- the counters thus quantify what each engine pays per
// collision.
struct ContentionProbeResult {
  uint64_t rounds = 0;
  uint64_t retries = 0;  // losing attempts re-run after kConflict/kTxAborted
  double wall_us_per_round = 0;
  kv::ClusterStats db_stats;
};

inline ContentionProbeResult RunContentionProbe(int rounds) {
  ContentionProbeResult res;
  res.rounds = static_cast<uint64_t>(rounds);
  auto engine = kv::MakeEngine(BenchEngineKind(),
                               kv::EngineConfig{.num_datanodes = 2, .replication = 2});
  kv::Schema s;
  s.table_name = "probe";
  s.columns = {{"k", kv::ColumnType::kInt64}, {"v", kv::ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  auto table = *engine->CreateTable(s);
  {
    auto tx = engine->Begin();
    if (!tx->Insert(table, kv::Row{int64_t{0}, int64_t{0}}).ok() || !tx->Commit().ok()) {
      std::abort();
    }
  }
  engine->ResetStats();
  std::barrier sync(2);
  std::atomic<uint64_t> retries{0};
  // Handshake flags, monotonically set to the 1-based round number.
  std::atomic<uint64_t> holder_claimed{0}, challenger_engaged{0};
  const int64_t start = MonotonicMicros();
  auto run_attempt = [&](kv::Txn& tx, const kv::Row& row) {
    if (!tx.Update(table, kv::Row{int64_t{0}, row[1].i64() + 1}).ok()) std::abort();
    hops::Status st = tx.Commit();
    if (!st.ok() && !st.IsRetryableTx()) std::abort();
    return st.ok();
  };
  auto claim = [&](kv::Txn& tx) {
    auto row = tx.Read(table, kv::Key{int64_t{0}}, kv::LockMode::kExclusive);
    if (!row.ok()) {
      tx.Abort();
      if (!row.status().IsRetryableTx()) std::abort();
    }
    return row;
  };
  auto holder = [&] {
    for (uint64_t r = 1; r <= static_cast<uint64_t>(rounds); ++r) {
      sync.arrive_and_wait();
      bool engaged = false;
      for (;;) {
        auto tx = engine->Begin();
        auto row = claim(*tx);
        if (!row.ok()) {
          retries.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!engaged) {
          engaged = true;
          // Row claimed (2PL: X lock held; OCC: version observed). Invite the
          // challenger in and hold the transaction open until it reports its
          // claim is imminent, then a touch longer so the few instructions
          // between its signal and its Read land while we still hold.
          holder_claimed.store(r, std::memory_order_release);
          while (challenger_engaged.load(std::memory_order_acquire) < r) {
          }
          auto hold_until = std::chrono::steady_clock::now() + std::chrono::microseconds(100);
          while (std::chrono::steady_clock::now() < hold_until) {
          }
        }
        if (run_attempt(*tx, *row)) break;
        retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto challenger = [&] {
    for (uint64_t r = 1; r <= static_cast<uint64_t>(rounds); ++r) {
      sync.arrive_and_wait();
      while (holder_claimed.load(std::memory_order_acquire) < r) {
      }
      bool signaled = false;
      for (;;) {
        auto tx = engine->Begin();
        if (!signaled) {
          signaled = true;
          challenger_engaged.store(r, std::memory_order_release);
        }
        auto row = claim(*tx);
        if (row.ok() && run_attempt(*tx, *row)) break;
        retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread a(holder), b(challenger);
  a.join();
  b.join();
  res.wall_us_per_round =
      rounds > 0 ? static_cast<double>(MonotonicMicros() - start) / rounds : 0;
  res.retries = retries.load();
  res.db_stats = engine->StatsSnapshot();
  // Every successful claim incremented the row exactly once, collisions and
  // retries notwithstanding -- a cheap first-committer-wins sanity check.
  auto check = engine->Begin();
  auto row = check->Read(table, kv::Key{int64_t{0}}, kv::LockMode::kReadCommitted);
  if (!row.ok() || (*row)[1].i64() != 2 * static_cast<int64_t>(rounds)) std::abort();
  check->Abort();
  return res;
}

}  // namespace hops::bench
