// Shared setup for the figure/table benchmarks: build a capture cluster,
// bulk-load a namespace with the paper's shape statistics, and record
// database-access trace pools that the simulator replays (see DESIGN.md §2).
#pragma once

#include <cstdio>
#include <memory>

#include "sim/model.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hops::bench {

struct CaptureEnv {
  std::unique_ptr<hops::fs::MiniCluster> cluster;
  wl::GeneratedNamespace ns;
  wl::TracePools pools;
};

inline CaptureEnv MakeCapture(const wl::OpMix& mix, int64_t files = 8000, int top_dirs = 32,
                              int samples_per_op = 16, const char* hotspot_base = nullptr,
                              uint64_t seed = 11) {
  CaptureEnv env;
  hops::fs::MiniClusterOptions options;
  options.db.num_datanodes = 12;  // §7.1 capture topology
  options.db.replication = 2;
  options.db.partitions_per_table = 48;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  env.cluster = *hops::fs::MiniCluster::Start(options);
  wl::NamespaceShape shape;
  shape.top_level_dirs = top_dirs;
  env.ns = hotspot_base != nullptr
               ? wl::PlanNamespaceUnder(hotspot_base, shape, files, seed)
               : wl::PlanNamespace(shape, files, seed);
  if (hotspot_base != nullptr) {
    auto client = env.cluster->NewClient(hops::fs::NamenodePolicy::kSticky, "mk");
    (void)client.Mkdirs(hotspot_base);
  }
  wl::BulkLoader loader(&env.cluster->db(), &env.cluster->schema(),
                        &env.cluster->fs_config());
  auto loaded = loader.Load(env.ns, 1.3, 0, seed);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", loaded.status().ToString().c_str());
    std::abort();
  }
  env.pools = wl::CollectTraces(*env.cluster, env.ns, mix, samples_per_op, seed);
  return env;
}

// Enough closed-loop clients to saturate the configured topology.
inline int SaturatingClients(int num_namenodes) {
  return std::min(6000, std::max(128, num_namenodes * 90));
}

}  // namespace hops::bench
