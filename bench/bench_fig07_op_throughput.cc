// Figure 7: raw throughput of individual file system operations. For each
// operation the benchmark floods the cluster with only that operation;
// HopsFS is reported at 5/30/60 namenodes (the paper draws stacked bars in
// 5-namenode increments) against the 5-server HDFS setup.
#include <cctype>

#include "bench_common.h"

int main() {
  using namespace hops;
  struct OpRow {
    const char* label;
    wl::OpType op;
    double dir_fraction;
  };
  const std::vector<OpRow> ops = {
      {"MKDIR", wl::OpType::kMkdirs, 1.0},
      {"CREATE FILE", wl::OpType::kCreateFile, 0.0},
      {"APPEND FILE", wl::OpType::kAppendFile, 0.0},
      {"READ FILE", wl::OpType::kRead, 0.0},
      {"LS DIR", wl::OpType::kList, 1.0},
      {"LS FILE", wl::OpType::kList, 0.0},
      {"CHMOD FILE", wl::OpType::kSetPermission, 0.0},
      {"CHMOD DIR", wl::OpType::kSetPermission, 1.0},
      {"INFO FILE", wl::OpType::kStat, 0.0},
      {"INFO DIR", wl::OpType::kStat, 1.0},
      {"SET REPL", wl::OpType::kSetReplication, 0.0},
      {"RENAME FILE", wl::OpType::kMove, 0.0},
      {"DEL FILE", wl::OpType::kDelete, 0.0},
      {"CHOWN FILE", wl::OpType::kSetOwner, 0.0},
      {"CHOWN DIR", wl::OpType::kSetOwner, 1.0},
  };

  // One capture covering every op type (sampled with its Figure-7 target
  // kind) provides the trace pools.
  std::printf("# Figure 7: per-operation raw throughput (ops/sec)\n");
  std::printf("# kv engine: %s\n",
              std::string(kv::EngineKindName(hops::bench::BenchEngineKind())).c_str());
  std::printf("# capturing traces...\n");
  wl::OpMix capture_mix;
  capture_mix.name = "fig7";
  for (const auto& row : ops) {
    capture_mix.entries.push_back({row.op, 100.0 / ops.size(), row.dir_fraction});
  }
  auto env = hops::bench::MakeCapture(capture_mix, 8000, 32, 20);

  sim::Calibration cal;
  hops::bench::BenchJson json("fig07_op_throughput");
  std::printf("\n%-12s %12s %12s %12s %12s\n", "operation", "hops@5nn", "hops@30nn",
              "hops@60nn", "hdfs");
  for (const auto& row : ops) {
    wl::OpMix mix = wl::OpMix::Single(row.op, row.dir_fraction);
    double hops_rates[3];
    int idx = 0;
    for (int nn : {5, 30, 60}) {
      sim::WorkloadSpec spec;
      spec.mix = &mix;
      spec.traces = &env.pools;
      spec.num_clients = hops::bench::SaturatingClients(nn);
      spec.duration_s = 0.08;
      spec.warmup_s = 0.03;
      hops_rates[idx++] =
          sim::SimulateHopsFs(sim::HopsTopology{nn, 12}, spec, cal).ops_per_sec;
    }
    sim::WorkloadSpec hdfs_spec;
    hdfs_spec.mix = &mix;
    hdfs_spec.num_clients = 384;
    hdfs_spec.duration_s = 0.2;
    hdfs_spec.warmup_s = 0.05;
    auto hdfs = sim::SimulateHdfs(hdfs_spec, cal);
    std::printf("%-12s %12.0f %12.0f %12.0f %12.0f\n", row.label, hops_rates[0],
                hops_rates[1], hops_rates[2], hdfs.ops_per_sec);
    std::fflush(stdout);
    std::string op = row.label;
    for (char& c : op) c = c == ' ' ? '_' : static_cast<char>(std::tolower(c));
    json.Metric(op + "_hops_60nn_ops_per_sec", hops_rates[2]);
    json.Metric(op + "_hdfs_ops_per_sec", hdfs.ops_per_sec);
  }
  std::printf("\nshape to compare with the paper: HopsFS exceeds HDFS on every operation,\n"
              "read-only ops scale furthest, and each 5-namenode increment adds throughput.\n");

  // --- Handler pool + completion mux ----------------------------------------
  // Traces are captured on the REAL namenode while 2 x num_handlers
  // closed-loop clients run behind its bounded handler pool, every handler
  // transaction sharing the cross-transaction completion mux -- so the
  // captured windows genuinely merged across transactions (co_scheduled).
  // The DES then replays those traces on a 5-namenode cluster where a round
  // trip costs real RTT: throughput climbs with the handler count because
  // more concurrent handlers merge more flush windows into shared trips.
  // The per-transaction path (mux off) stays selectable as the baseline.
  std::printf("\n# Handler pool x completion mux (traces captured under concurrent load,\n"
              "# replayed on a 5-namenode simulated cluster; Spotify mix)\n");
  std::printf("%-12s %14s %14s %12s %16s\n", "handlers", "mux ops/s", "per-tx ops/s",
              "co-sched", "cross-tx saved");
  for (int handlers : {1, 2, 4, 8}) {
    auto mux_cap = hops::bench::CaptureUnderHandlerLoad(handlers, /*use_mux=*/true,
                                                        2 * handlers, 400, 13);
    auto per_tx_cap = hops::bench::CaptureUnderHandlerLoad(handlers, /*use_mux=*/false,
                                                           2 * handlers, 400, 13);
    auto simulate = [&](const wl::TracePools& pools) {
      wl::OpMix replay = wl::OpMix::Single(wl::OpType::kRead);
      sim::WorkloadSpec spec;
      spec.mix = &replay;
      spec.traces = &pools;
      // Below namenode-CPU saturation, so the closed loop is latency-bound
      // and the shared trips show up as throughput (at saturation the NN
      // stations would cap both paths identically).
      spec.num_clients = 120;
      spec.duration_s = 0.08;
      spec.warmup_s = 0.03;
      return sim::SimulateHopsFs(sim::HopsTopology{5, 12}, spec, cal).ops_per_sec;
    };
    const double mux_ops = simulate(mux_cap.pools);
    const double per_tx_ops = simulate(per_tx_cap.pools);
    std::printf("%-12d %14.0f %14.0f %11.1f%% %16llu\n", handlers, mux_ops, per_tx_ops,
                100.0 * mux_cap.co_scheduled_fraction,
                static_cast<unsigned long long>(mux_cap.cross_tx_saved));
    std::fflush(stdout);
    std::string prefix = "handlers" + std::to_string(handlers) + "_";
    json.Metric(prefix + "mux_ops_per_sec", mux_ops);
    json.Metric(prefix + "per_tx_ops_per_sec", per_tx_ops);
    json.Metric(prefix + "co_scheduled_fraction", mux_cap.co_scheduled_fraction);
    // Concurrency-control pressure under this handler count: OCC validation
    // conflicts (absorbed by RunTx retries) vs the 2PL lock counters.
    json.EngineStats(prefix, mux_cap.db_stats);
  }
  std::printf("\nshape: under the mux, throughput grows with num_handlers (merged windows\n"
              "ride shared trips); the per-transaction baseline stays flat.\n");

  // --- Adaptive gather delay sweep ------------------------------------------
  // Same capture-under-load setup, mux always on, but the gather-delay
  // policy pinned on vs off at each handler count. The gather delay holds
  // the flush door open for a bounded moment so near-simultaneous windows
  // from sibling handlers merge into one trip. With few handlers there is
  // rarely a sibling to wait for, so the hold is pure added latency; from
  // ~4 handlers up the extra merged windows pay for the wait. This sweep
  // justifies MiniCluster's default-on policy at num_handlers >= 4.
  std::printf("\n# Adaptive gather delay sweep (mux on; gather policy pinned on vs off)\n");
  std::printf("%-12s %14s %14s %14s %16s\n", "handlers", "gather ops/s", "no-gather ops/s",
              "gather waits", "gathered windows");
  for (int handlers : {1, 2, 4, 8}) {
    auto on_cap = hops::bench::CaptureUnderHandlerLoad(handlers, /*use_mux=*/true,
                                                       2 * handlers, 400, 13,
                                                       /*adaptive_gather=*/true);
    auto off_cap = hops::bench::CaptureUnderHandlerLoad(handlers, /*use_mux=*/true,
                                                        2 * handlers, 400, 13,
                                                        /*adaptive_gather=*/false);
    auto simulate = [&](const wl::TracePools& pools) {
      wl::OpMix replay = wl::OpMix::Single(wl::OpType::kRead);
      sim::WorkloadSpec spec;
      spec.mix = &replay;
      spec.traces = &pools;
      spec.num_clients = 120;
      spec.duration_s = 0.08;
      spec.warmup_s = 0.03;
      return sim::SimulateHopsFs(sim::HopsTopology{5, 12}, spec, cal).ops_per_sec;
    };
    const double on_ops = simulate(on_cap.pools);
    const double off_ops = simulate(off_cap.pools);
    std::printf("%-12d %14.0f %14.0f %14llu %16llu\n", handlers, on_ops, off_ops,
                static_cast<unsigned long long>(on_cap.mux_gather_waits),
                static_cast<unsigned long long>(on_cap.mux_gathered_windows));
    std::fflush(stdout);
    std::string prefix = "gather" + std::to_string(handlers) + "_";
    json.Metric(prefix + "on_ops_per_sec", on_ops);
    json.Metric(prefix + "off_ops_per_sec", off_ops);
    json.Metric(prefix + "gather_waits", static_cast<double>(on_cap.mux_gather_waits));
    json.Metric(prefix + "gathered_windows",
                static_cast<double>(on_cap.mux_gathered_windows));
  }
  std::printf("\nshape: gather-on loses nothing (or a hair) at 1-2 handlers and pulls ahead\n"
              "from 4 handlers as held doors merge sibling windows -- hence the default-on\n"
              "threshold at num_handlers >= 4.\n");

  // --- Engine ablation: contended create hotspot ----------------------------
  // All threads create files in one shared directory, so every transaction
  // rewrites the same parent inode row. Rerun with HOPS_KV_ENGINE=occ to
  // compare: 2PL serializes on the row lock (lock_waits), OCC retries
  // commit-validation conflicts (occ_conflicts) -- same created files either
  // way.
  {
    auto hot = hops::bench::RunContendedCreates(/*threads=*/8, /*files_per_thread=*/150,
                                                /*seed=*/19);
    std::printf("\n# Engine ablation: 8 threads x 150 creates, ONE shared directory [%s]\n",
                std::string(kv::EngineKindName(hops::bench::BenchEngineKind())).c_str());
    std::printf("%-12s %14s %14s %14s %14s\n", "ops", "wall ops/s", "occ conflicts",
                "lock waits", "lock timeouts");
    std::printf("%-12llu %14.0f %14llu %14llu %14llu\n",
                static_cast<unsigned long long>(hot.ops), hot.ops_per_sec,
                static_cast<unsigned long long>(hot.db_stats.occ_conflicts),
                static_cast<unsigned long long>(hot.db_stats.lock_waits),
                static_cast<unsigned long long>(hot.db_stats.lock_timeouts));
    json.Metric("hotspot_ops_per_sec", hot.ops_per_sec);
    json.EngineStats("hotspot_", hot.db_stats);
  }

  // Deterministic collision probe: one forced two-claimant collision per
  // round on a single row, so the per-collision cost counters are populated
  // reliably (the FS hotspot above collides only at realistic rates).
  {
    auto probe = hops::bench::RunContentionProbe(/*rounds=*/200);
    std::printf("\n# Contention probe: 200 forced two-claimant rounds on one row [%s]\n",
                std::string(kv::EngineKindName(hops::bench::BenchEngineKind())).c_str());
    std::printf("us/round=%.1f retries=%llu occ_conflicts=%llu lock_waits=%llu\n",
                probe.wall_us_per_round, static_cast<unsigned long long>(probe.retries),
                static_cast<unsigned long long>(probe.db_stats.occ_conflicts),
                static_cast<unsigned long long>(probe.db_stats.lock_waits));
    json.Metric("probe_us_per_round", probe.wall_us_per_round);
    json.Metric("probe_retries", static_cast<double>(probe.retries));
    json.EngineStats("probe_", probe.db_stats);
  }
  return 0;
}
