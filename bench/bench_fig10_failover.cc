// Figure 10: namenode failover. HDFS: killing the active namenode stops all
// metadata service for 8-10 seconds until the standby takes over. HopsFS:
// killing namenodes in a round-robin fashion only nudges throughput --
// clients transparently fail over to the surviving namenodes (restarted
// namenodes receive fewer requests because clients are sticky).
#include "bench_common.h"

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();
  std::printf("# Figure 10: throughput timeline under namenode failures\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(mix, 4000, 32, 12);

  sim::Calibration cal;
  constexpr double kDuration = 45;
  constexpr double kBucket = 1.5;

  // HDFS: kill the active namenode at t=15s.
  sim::WorkloadSpec hdfs_spec;
  hdfs_spec.mix = &mix;
  hdfs_spec.num_clients = 192;
  hdfs_spec.duration_s = kDuration;
  hdfs_spec.warmup_s = 0;
  auto hdfs = sim::SimulateHdfs(hdfs_spec, cal, /*kill_active_at_s=*/15, kBucket);

  // HopsFS: 8 namenodes; kill one every 9s round-robin and revive it 6s
  // later (the experiment's kill-and-restart loop, §7.6.1).
  sim::WorkloadSpec hops_spec;
  hops_spec.mix = &mix;
  hops_spec.traces = &env.pools;
  hops_spec.num_clients = 320;
  hops_spec.duration_s = kDuration;
  hops_spec.warmup_s = 0;
  std::vector<sim::FailureEvent> failures;
  int victim = 0;
  for (double t = 9; t + 6 < kDuration; t += 9) {
    failures.push_back({t, victim, -1});
    failures.push_back({t + 6, -1, victim});
    victim = (victim + 1) % 8;
  }
  auto hops_result =
      sim::SimulateHopsFs(sim::HopsTopology{8, 12}, hops_spec, cal, failures, kBucket);

  std::printf("\n%-8s %14s %14s\n", "t (s)", "HopsFS ops/s", "HDFS ops/s");
  size_t buckets = std::max(hops_result.timeline_ops_per_sec.size(),
                            hdfs.timeline_ops_per_sec.size());
  for (size_t b = 0; b < buckets; ++b) {
    double hops_rate =
        b < hops_result.timeline_ops_per_sec.size() ? hops_result.timeline_ops_per_sec[b] : 0;
    double hdfs_rate =
        b < hdfs.timeline_ops_per_sec.size() ? hdfs.timeline_ops_per_sec[b] : 0;
    std::printf("%-8.0f %14.0f %14.0f\n", static_cast<double>(b) * kBucket, hops_rate,
                hdfs_rate);
  }
  std::printf("\nvertical events: HDFS active killed at t=15s (expect ~%0.fs of zero\n"
              "throughput); HopsFS namenodes killed at t=9,18,27,36s (expect dips\n"
              "proportional to 1/8 of capacity, no outage).\n",
              cal.hdfs_failover_s);
  return 0;
}
