// Figure 10: namenode failover. HDFS: killing the active namenode stops all
// metadata service for 8-10 seconds until the standby takes over. HopsFS:
// killing namenodes in a round-robin fashion only nudges throughput --
// clients transparently fail over to the surviving namenodes (restarted
// namenodes receive fewer requests because clients are sticky).
//
// Part 2 extends the figure past the paper: recovery under load per fault
// class. Each class gets one pinned chaos event against a live MiniCluster
// (seeded schedule, same workload), and the acked-op timeline is binned into
// 100 ms buckets to measure the throughput dip it carves -- depth (1 -
// min/baseline) and width (time spent below 90% of baseline).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "chaos/chaos.h"

namespace {

struct Dip {
  double baseline = 0;  // mean pre-fault bucket rate (ops per bucket)
  double depth = 0;     // 1 - min/baseline over the post-fault window
  double width_ms = 0;  // time below 0.9 * baseline from fault apply on
};

// Bins the report's ok-samples into `bucket_ms` buckets and measures the dip
// the fault carved relative to the pre-fault throughput.
Dip MeasureDip(const hops::chaos::ChaosReport& report, int64_t duration_ms,
               int64_t bucket_ms) {
  Dip dip;
  size_t buckets = static_cast<size_t>((duration_ms + bucket_ms - 1) / bucket_ms);
  std::vector<double> rate(buckets, 0);
  for (const auto& s : report.samples) {
    if (!s.ok) continue;
    size_t b = static_cast<size_t>(s.at_us / (bucket_ms * 1000));
    if (b < buckets) rate[b] += 1;
  }
  const auto& ev = report.plan.events.at(0);
  size_t fault_bucket =
      std::min(buckets - 1, static_cast<size_t>(ev.applied_us / (bucket_ms * 1000)));
  // Baseline: mean over full buckets strictly before the fault (skip bucket 0,
  // which carries thread start-up).
  double sum = 0;
  size_t n = 0;
  for (size_t b = 1; b < fault_bucket; ++b) {
    sum += rate[b];
    ++n;
  }
  if (n == 0) return dip;
  dip.baseline = sum / static_cast<double>(n);
  if (dip.baseline <= 0) return dip;
  double min_rate = dip.baseline;
  for (size_t b = fault_bucket; b < buckets; ++b) min_rate = std::min(min_rate, rate[b]);
  dip.depth = 1.0 - min_rate / dip.baseline;
  for (size_t b = fault_bucket; b < buckets; ++b) {
    if (rate[b] < 0.9 * dip.baseline) dip.width_ms += static_cast<double>(bucket_ms);
  }
  return dip;
}

void RunRecoveryUnderLoad(hops::bench::BenchJson& json) {
  using hops::chaos::ChaosOptions;
  using hops::chaos::FaultClass;
  using hops::chaos::FaultClassName;
  constexpr int64_t kDurationMs = 3000;
  constexpr int64_t kBucketMs = 100;

  std::printf("\n# recovery under load: one pinned fault per class, 100ms buckets\n");
  std::printf("%-24s %10s %10s %12s %10s %10s\n", "fault class", "baseline", "depth",
              "width (ms)", "acked", "oracles");
  for (int c = 0; c < hops::chaos::kNumFaultClasses; ++c) {
    ChaosOptions options;
    options.seed = 10;
    options.duration = std::chrono::milliseconds(kDurationMs);
    options.num_faults = 1;
    options.only_class = static_cast<FaultClass>(c);
    options.pin_at_ms = 1200;   // after a ~steady first second of baseline
    options.pin_dwell_ms = 400;
    auto report = hops::chaos::RunChaos(options);
    Dip dip = MeasureDip(report, kDurationMs, kBucketMs);
    std::string name(FaultClassName(static_cast<FaultClass>(c)));
    std::printf("%-24s %10.1f %10.3f %12.0f %10llu %10s\n", name.c_str(), dip.baseline,
                dip.depth, dip.width_ms,
                static_cast<unsigned long long>(report.ops_acked),
                report.ok() ? "pass" : "FAIL");
    for (const auto& v : report.violations) std::printf("  violation: %s\n", v.c_str());
    json.Metric("recovery." + name + ".baseline_ops_per_bucket", dip.baseline);
    json.Metric("recovery." + name + ".dip_depth", dip.depth);
    json.Metric("recovery." + name + ".dip_width_ms", dip.width_ms);
    json.Metric("recovery." + name + ".ops_acked",
                static_cast<double>(report.ops_acked));
    json.Metric("recovery." + name + ".violations",
                static_cast<double>(report.violations.size()));
  }
}

}  // namespace

int main() {
  using namespace hops;
  bench::BenchJson json("fig10_failover");
  auto mix = wl::OpMix::Spotify();
  std::printf("# Figure 10: throughput timeline under namenode failures\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(mix, 4000, 32, 12);

  sim::Calibration cal;
  constexpr double kDuration = 45;
  constexpr double kBucket = 1.5;

  // HDFS: kill the active namenode at t=15s.
  sim::WorkloadSpec hdfs_spec;
  hdfs_spec.mix = &mix;
  hdfs_spec.num_clients = 192;
  hdfs_spec.duration_s = kDuration;
  hdfs_spec.warmup_s = 0;
  auto hdfs = sim::SimulateHdfs(hdfs_spec, cal, /*kill_active_at_s=*/15, kBucket);

  // HopsFS: 8 namenodes; kill one every 9s round-robin and revive it 6s
  // later (the experiment's kill-and-restart loop, §7.6.1).
  sim::WorkloadSpec hops_spec;
  hops_spec.mix = &mix;
  hops_spec.traces = &env.pools;
  hops_spec.num_clients = 320;
  hops_spec.duration_s = kDuration;
  hops_spec.warmup_s = 0;
  std::vector<sim::FailureEvent> failures;
  int victim = 0;
  for (double t = 9; t + 6 < kDuration; t += 9) {
    failures.push_back({t, victim, -1});
    failures.push_back({t + 6, -1, victim});
    victim = (victim + 1) % 8;
  }
  auto hops_result =
      sim::SimulateHopsFs(sim::HopsTopology{8, 12}, hops_spec, cal, failures, kBucket);

  std::printf("\n%-8s %14s %14s\n", "t (s)", "HopsFS ops/s", "HDFS ops/s");
  size_t buckets = std::max(hops_result.timeline_ops_per_sec.size(),
                            hdfs.timeline_ops_per_sec.size());
  for (size_t b = 0; b < buckets; ++b) {
    double hops_rate =
        b < hops_result.timeline_ops_per_sec.size() ? hops_result.timeline_ops_per_sec[b] : 0;
    double hdfs_rate =
        b < hdfs.timeline_ops_per_sec.size() ? hdfs.timeline_ops_per_sec[b] : 0;
    std::printf("%-8.0f %14.0f %14.0f\n", static_cast<double>(b) * kBucket, hops_rate,
                hdfs_rate);
  }
  std::printf("\nvertical events: HDFS active killed at t=15s (expect ~%0.fs of zero\n"
              "throughput); HopsFS namenodes killed at t=9,18,27,36s (expect dips\n"
              "proportional to 1/8 of capacity, no outage).\n",
              cal.hdfs_failover_s);

  // Part 2: live-cluster recovery dips per fault class (chaos harness).
  RunRecoveryUnderLoad(json);
  return 0;
}
