// Figure 2: relative cost of database operations --
// PK < batched PK < partition-pruned index scan < index scan < full table
// scan. Measured on the real NDB engine; reported in calibrated virtual
// microseconds (network round trips + per-partition service) and in raw
// engine round-trip / row counts. Uses google-benchmark with manual timing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ndb/cluster.h"
#include "sim/calibration.h"

namespace {

using namespace hops::ndb;

struct Fixture {
  Fixture() {
    ClusterConfig cfg;
    cfg.num_datanodes = 12;
    cfg.replication = 2;
    cfg.partitions_per_table = 24;
    cluster = std::make_unique<Cluster>(cfg);
    Schema s;
    s.table_name = "t";
    s.columns = {{"parent", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"id", ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table = *cluster->CreateTable(s);
    // 4096 parents x 16 children, mirroring a directory table.
    auto tx = cluster->Begin();
    int rows = 0;
    for (int64_t parent = 0; parent < 4096; ++parent) {
      for (int64_t c = 0; c < 16; ++c) {
        (void)tx->Insert(table, Row{parent, "f" + std::to_string(c), parent * 16 + c});
        if (++rows % 512 == 0) {
          (void)tx->Commit();
          tx = cluster->Begin();
        }
      }
    }
    (void)tx->Commit();
  }

  // Virtual *cost* (total cluster work) of a traced transaction under the
  // simulator's calibration: network round trips plus every touched
  // partition's service share. Figure 2 ranks operations by the resources
  // they consume, which is why the fan-out of IS/FTS dominates even though
  // the partitions serve in parallel.
  double VirtualCostUs(const CostTrace& trace) const {
    double total = 0;
    for (const auto& a : trace.accesses) {
      total += cal.nn_db_rtt_us * a.round_trips;
      for (const auto& p : a.parts) {
        total += cal.db_access_base_us + p.rows * cal.db_row_cpu_us;
      }
    }
    return total;
  }

  std::unique_ptr<Cluster> cluster;
  TableId table = 0;
  hops::sim::Calibration cal;
};

Fixture& F() {
  static Fixture f;
  return f;
}

void ReportTrace(benchmark::State& state, const CostTrace& trace) {
  state.SetIterationTime(F().VirtualCostUs(trace) * 1e-6);
  state.counters["round_trips"] = trace.TotalRoundTrips();
  state.counters["rows"] = trace.TotalRows();
  uint32_t parts = 0;
  for (const auto& a : trace.accesses) parts += a.parts.size();
  state.counters["partitions"] = parts;
}

void BM_PrimaryKeyRead(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto tx = F().cluster->Begin(TxHint{F().table, static_cast<uint64_t>(i % 4096)});
    tx->EnableTrace();
    benchmark::DoNotOptimize(tx->Read(F().table, {i % 4096, "f3"}, LockMode::kReadCommitted));
    ReportTrace(state, tx->trace());
    i++;
  }
}
BENCHMARK(BM_PrimaryKeyRead)->UseManualTime()->Name("Fig2/PK_read");

std::vector<Key> EightKeys(int64_t i) {
  std::vector<Key> keys;
  for (int64_t k = 0; k < 8; ++k) keys.push_back({(i + k * 37) % 4096, "f1"});
  return keys;
}

// Per-row baseline for the batched read: the same 8 keys, one round trip
// each. The round_trips counter is the number the batch path must beat.
void BM_PerRowPrimaryKey(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto tx = F().cluster->Begin();
    tx->EnableTrace();
    for (const Key& key : EightKeys(i)) {
      benchmark::DoNotOptimize(tx->Read(F().table, key, LockMode::kReadCommitted));
    }
    ReportTrace(state, tx->trace());
    i++;
  }
}
BENCHMARK(BM_PerRowPrimaryKey)->UseManualTime()->Name("Fig2/PerRow_PK_x8");

void BM_BatchedPrimaryKey(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto tx = F().cluster->Begin();
    tx->EnableTrace();
    benchmark::DoNotOptimize(tx->BatchRead(F().table, EightKeys(i), LockMode::kReadCommitted));
    ReportTrace(state, tx->trace());
    i++;
  }
}
BENCHMARK(BM_BatchedPrimaryKey)->UseManualTime()->Name("Fig2/Batched_PK_x8");

void BM_PartitionPrunedIndexScan(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto tx = F().cluster->Begin(TxHint{F().table, static_cast<uint64_t>(i % 4096)});
    tx->EnableTrace();
    benchmark::DoNotOptimize(tx->Ppis(F().table, {i % 4096}));
    ReportTrace(state, tx->trace());
    i++;
  }
}
BENCHMARK(BM_PartitionPrunedIndexScan)->UseManualTime()->Name("Fig2/PPIS");

void BM_IndexScan(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto tx = F().cluster->Begin();
    tx->EnableTrace();
    benchmark::DoNotOptimize(tx->IndexScan(F().table, {i % 4096}));
    ReportTrace(state, tx->trace());
    i++;
  }
}
BENCHMARK(BM_IndexScan)->UseManualTime()->Name("Fig2/IndexScan");

void BM_FullTableScan(benchmark::State& state) {
  for (auto _ : state) {
    auto tx = F().cluster->Begin();
    tx->EnableTrace();
    ScanOptions opts;
    opts.predicate = [](const Row& r) { return r[2].i64() % 997 == 0; };
    benchmark::DoNotOptimize(tx->FullTableScan(F().table, opts));
    ReportTrace(state, tx->trace());
  }
}
BENCHMARK(BM_FullTableScan)->UseManualTime()->Name("Fig2/FullTableScan");

}  // namespace

int main(int argc, char** argv) {
  // Headline number first: simulated DB round trips per 8-key read, batched
  // vs per-row (the batching win the namenode hot paths are built on).
  {
    auto per_row = F().cluster->Begin();
    per_row->EnableTrace();
    for (const Key& key : EightKeys(0)) {
      (void)per_row->Read(F().table, key, LockMode::kReadCommitted);
    }
    auto batched = F().cluster->Begin();
    batched->EnableTrace();
    (void)batched->BatchRead(F().table, EightKeys(0), LockMode::kReadCommitted);
    std::printf("# 8-key PK read: %u round trips per-row vs %u batched (%.1fx fewer)\n",
                per_row->trace().TotalRoundTrips(), batched->trace().TotalRoundTrips(),
                static_cast<double>(per_row->trace().TotalRoundTrips()) /
                    batched->trace().TotalRoundTrips());
  }
  // ... and the pipelining win on top: four independent 8-key batches, sync
  // Execute (one trip each, chained) vs ExecuteAsync (one overlapped
  // round-trip window). Trips come from the cluster counters, latency from
  // the calibrated trace cost.
  {
    constexpr int kBatches = 4;
    auto stage = [](ReadBatch& b, int64_t i) {
      for (const Key& key : EightKeys(i)) b.Get(F().table, key, LockMode::kReadCommitted);
    };
    F().cluster->ResetStats();
    auto sync_tx = F().cluster->Begin();
    sync_tx->EnableTrace();
    for (int64_t i = 0; i < kBatches; ++i) {
      ReadBatch b;
      stage(b, i);
      (void)sync_tx->Execute(b);
    }
    auto sync_stats = F().cluster->StatsSnapshot();
    double sync_cost = F().VirtualCostUs(sync_tx->trace());

    F().cluster->ResetStats();
    auto pipe_tx = F().cluster->Begin();
    pipe_tx->EnableTrace();
    {
      std::vector<ReadBatch> batches(kBatches);
      std::vector<PendingBatch> pending;
      for (int64_t i = 0; i < kBatches; ++i) {
        stage(batches[static_cast<size_t>(i)], i);
        pending.push_back(pipe_tx->ExecuteAsync(batches[static_cast<size_t>(i)]));
      }
      for (auto& p : pending) (void)p.Wait();
    }
    auto pipe_stats = F().cluster->StatsSnapshot();
    double pipe_cost = F().VirtualCostUs(pipe_tx->trace());
    std::printf("# 4x 8-key batches: sync %llu trips / %.0fus vs pipelined %llu trips "
                "/ %.0fus virtual cost (%llu overlapped trips saved, %.2fx)\n",
                static_cast<unsigned long long>(sync_stats.round_trips), sync_cost,
                static_cast<unsigned long long>(pipe_stats.round_trips), pipe_cost,
                static_cast<unsigned long long>(pipe_stats.overlapped_round_trips),
                sync_cost / pipe_cost);
    F().cluster->ResetStats();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
