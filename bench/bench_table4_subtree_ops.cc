// Table 4: latency of move and recursive-delete subtree operations on large
// directories, HopsFS vs HDFS. Runs the *real* engines (no simulation):
// HopsFS executes the three-phase subtree protocol over NDB; HDFS mutates
// its in-memory tree (and wins on latency, as in the paper -- the trade-off
// §7.4.1 accepts for rare operations).
//
// Directory sizes are scaled down from the paper's 0.25M/0.5M/1M files to
// keep the default run short; set HOPS_BENCH_FULL=1 for the paper's sizes.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hdfs/ha_cluster.h"
#include "hopsfs/mini_cluster.h"
#include "util/clock.h"
#include "workload/namespace_gen.h"

namespace {

// Builds a directory subtree holding `files` one-block files under `base`.
hops::wl::GeneratedNamespace SubtreeUnder(const std::string& base, int64_t files,
                                          uint64_t seed) {
  hops::wl::NamespaceShape shape;
  shape.files_per_dir = 64;  // wide directories, as in the benchmark utility
  shape.subdirs_per_dir = 8;
  shape.top_level_dirs = 8;
  shape.name_length = 16;
  return hops::wl::PlanNamespaceUnder(base, shape, files, seed);
}

}  // namespace

int main() {
  using namespace hops;
  bench::BenchJson json("table4_subtree_ops");
  const bool full = std::getenv("HOPS_BENCH_FULL") != nullptr;
  const std::vector<int64_t> sizes = full
      ? std::vector<int64_t>{250000, 500000, 1000000}
      : std::vector<int64_t>{25000, 50000, 100000};

  std::printf("# Table 4: mv and rm -rf latency on large directories\n");
  std::printf("# sizes %s (HOPS_BENCH_FULL=1 for the paper's 0.25M/0.5M/1M)\n",
              full ? "full" : "scaled 10x down");
  std::printf("%-10s %14s %14s %14s %14s\n", "dir size", "HDFS mv", "HopsFS mv",
              "HDFS rm -rf", "HopsFS rm -rf");

  struct RmStats {
    double ms = 0;
    uint64_t round_trips = 0;
    uint64_t overlapped = 0;
  };
  struct SizeResult {
    int64_t files = 0;
    RmStats per_row, pipelined;
  };
  std::vector<SizeResult> rm_results;

  for (int64_t files : sizes) {
    // --- HopsFS ---------------------------------------------------------
    // Two passes over identical namespaces: subtree phase 3 per-row (the
    // pre-pipelining path) vs pipelined through the async batch engine.
    // The phase-1/2 cost is identical in both, so the deltas isolate the
    // pipelined delete.
    SizeResult size_result;
    size_result.files = files;
    double hops_mv_ms = 0, hops_rm_ms = 0;
    auto ns = SubtreeUnder("/victim", files, 7);
    for (bool pipelined : {false, true}) {
      fs::MiniClusterOptions options;
      options.db.num_datanodes = 12;
      options.db.replication = 2;
      options.db.partitions_per_table = 48;
      options.fs.subtree_delete_batch = 512;
      options.fs.subtree_parallelism = 2;
      options.fs.subtree_pipelined = pipelined;
      options.num_namenodes = 2;
      options.num_datanodes = 3;
      auto cluster = *fs::MiniCluster::Start(options);
      auto client = cluster->NewClient(fs::NamenodePolicy::kSticky, "bench");
      if (!client.Mkdirs("/victim").ok() || !client.Mkdirs("/dst").ok()) return 1;
      wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
      if (!loader.Load(ns, 1.0, 0, 7).ok()) return 1;

      int64_t t0 = MonotonicMicros();
      if (!client.Rename("/victim", "/dst/victim").ok()) return 1;
      double mv_ms = static_cast<double>(MonotonicMicros() - t0) / 1000.0;

      auto before = cluster->db().StatsSnapshot();
      t0 = MonotonicMicros();
      if (!client.Delete("/dst/victim", true).ok()) return 1;
      double rm_ms = static_cast<double>(MonotonicMicros() - t0) / 1000.0;
      auto after = cluster->db().StatsSnapshot();

      RmStats& rm = pipelined ? size_result.pipelined : size_result.per_row;
      rm.ms = rm_ms;
      rm.round_trips = after.round_trips - before.round_trips;
      rm.overlapped = after.overlapped_round_trips - before.overlapped_round_trips;
      if (pipelined) {  // the headline row reports the default (pipelined) path
        hops_mv_ms = mv_ms;
        hops_rm_ms = rm_ms;
      }
    }
    rm_results.push_back(size_result);

    // --- HDFS -----------------------------------------------------------
    hdfs::HaCluster ha(hdfs::HaCluster::Options{});
    hdfs::Namesystem* hdfs_fs = ha.active();
    if (!hdfs_fs->Mkdirs("/dst").ok()) return 1;
    for (const auto& dir : ns.dirs) {
      if (!hdfs_fs->Mkdirs(dir).ok()) return 1;
    }
    for (const auto& file : ns.files) {
      if (!hdfs_fs->Create(file, "b").ok()) return 1;
      if (!hdfs_fs->AddBlock(file, "b", 1024).ok()) return 1;
      if (!hdfs_fs->CompleteFile(file, "b").ok()) return 1;
    }
    int64_t t0 = MonotonicMicros();
    if (!hdfs_fs->Rename("/victim", "/dst/victim").ok()) return 1;
    double hdfs_mv_ms = static_cast<double>(MonotonicMicros() - t0) / 1000.0;
    t0 = MonotonicMicros();
    if (!hdfs_fs->Delete("/dst/victim", true).ok()) return 1;
    double hdfs_rm_ms = static_cast<double>(MonotonicMicros() - t0) / 1000.0;

    char label[32];
    std::snprintf(label, sizeof(label), "%.2fM", static_cast<double>(files) / 1e6);
    std::printf("%-10s %12.0fms %12.0fms %12.0fms %12.0fms\n", label, hdfs_mv_ms,
                hops_mv_ms, hdfs_rm_ms, hops_rm_ms);
    std::fflush(stdout);
    std::string prefix = "files" + std::to_string(files) + "_";
    json.Metric(prefix + "hops_mv_ms", hops_mv_ms);
    json.Metric(prefix + "hops_rm_ms", hops_rm_ms);
    json.Metric(prefix + "hdfs_mv_ms", hdfs_mv_ms);
    json.Metric(prefix + "hdfs_rm_ms", hdfs_rm_ms);
  }
  std::printf("\n# Subtree delete, per-row vs pipelined phase 3 (same namespace):\n");
  std::printf("%-10s %16s %16s %12s %12s %14s\n", "dir size", "per-row trips",
              "pipelined trips", "saved", "per-row ms", "pipelined ms");
  for (const auto& r : rm_results) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.2fM", static_cast<double>(r.files) / 1e6);
    std::printf("%-10s %16llu %16llu %11.1fx %12.0f %14.0f\n", label,
                static_cast<unsigned long long>(r.per_row.round_trips),
                static_cast<unsigned long long>(r.pipelined.round_trips),
                static_cast<double>(r.per_row.round_trips) /
                    static_cast<double>(std::max<uint64_t>(1, r.pipelined.round_trips)),
                r.per_row.ms, r.pipelined.ms);
    std::string prefix = "files" + std::to_string(r.files) + "_";
    json.Metric(prefix + "per_row_trips", static_cast<double>(r.per_row.round_trips));
    json.Metric(prefix + "pipelined_trips",
                static_cast<double>(r.pipelined.round_trips));
    json.Metric(prefix + "per_row_ms", r.per_row.ms);
    json.Metric(prefix + "pipelined_ms", r.pipelined.ms);
  }

  std::printf("\npaper reference (1M files): HDFS mv 357ms / HopsFS mv 5870ms;\n");
  std::printf("HDFS rm 606ms / HopsFS rm 15941ms. Shape: HDFS wins on subtree ops\n");
  std::printf("(all in RAM), HopsFS pays network reads + batched transactions, and\n");
  std::printf("mv grows slower than rm because it rewrites only the subtree root.\n");
  return 0;
}
