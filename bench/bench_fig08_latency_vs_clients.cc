// Figure 8: average operation latency for an increasing number of
// concurrent clients (Spotify workload). Paper shape: HDFS latency blows up
// as requests queue behind the namesystem lock and RPC queues; HopsFS keeps
// latency low to thousands of clients because namenodes and database shards
// serve in parallel.
#include "bench_common.h"

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();
  std::printf("# Figure 8: average latency vs concurrent clients (Spotify mix)\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(mix);

  sim::Calibration cal;
  bench::BenchJson json("fig08_latency_vs_clients");
  const std::vector<int> client_counts = {100, 200, 500, 1000, 2000, 4000, 6000};
  std::printf("\n%-10s %16s %16s\n", "clients", "HopsFS avg (ms)", "HDFS avg (ms)");
  for (int clients : client_counts) {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &env.pools;
    spec.num_clients = clients;
    spec.duration_s = 0.15;
    spec.warmup_s = 0.05;
    auto hops_result = sim::SimulateHopsFs(sim::HopsTopology{60, 12}, spec, cal);

    sim::WorkloadSpec hdfs_spec = spec;
    hdfs_spec.duration_s = 0.4;
    hdfs_spec.warmup_s = 0.1;
    auto hdfs_result = sim::SimulateHdfs(hdfs_spec, cal);

    std::printf("%-10d %16.2f %16.2f\n", clients, hops_result.latency_us.Mean() / 1000.0,
                hdfs_result.latency_us.Mean() / 1000.0);
    std::fflush(stdout);
    std::string prefix = "clients" + std::to_string(clients) + "_";
    json.Metric(prefix + "hops_avg_ms", hops_result.latency_us.Mean() / 1000.0);
    json.Metric(prefix + "hdfs_avg_ms", hdfs_result.latency_us.Mean() / 1000.0);
  }
  std::printf("\nshape to compare with Figure 8: HDFS latency grows steeply with client\n"
              "count (ops queue at the single namenode); HopsFS stays low and flat.\n");

  // --- Handler pool + completion mux ----------------------------------------
  // Traces captured on the real namenode while an increasing number of
  // closed-loop clients runs behind a fixed 4-handler pool, then replayed on
  // the simulated cluster. With the mux, more concurrent clients merge more
  // flush windows across transactions (co_scheduled), so the replayed
  // operation latency FALLS as concurrency rises; the selectable
  // per-transaction path stays flat.
  constexpr int kHandlers = 4;
  std::printf("\n# Latency behind %d handlers (traces captured under concurrent load,\n"
              "# replayed on a 5-namenode simulated cluster; Spotify mix)\n", kHandlers);
  std::printf("%-10s %16s %16s %12s\n", "clients", "mux avg (ms)", "per-tx avg (ms)",
              "co-sched");
  for (int clients : {2, 4, 8, 16}) {
    auto mux_cap = hops::bench::CaptureUnderHandlerLoad(kHandlers, /*use_mux=*/true,
                                                        clients, 2400 / clients, 17);
    auto per_tx_cap = hops::bench::CaptureUnderHandlerLoad(kHandlers, /*use_mux=*/false,
                                                           clients, 2400 / clients, 17);
    auto simulate = [&](const wl::TracePools& pools) {
      wl::OpMix replay = wl::OpMix::Single(wl::OpType::kRead);
      sim::WorkloadSpec spec;
      spec.mix = &replay;
      spec.traces = &pools;
      // Below namenode-CPU saturation: queueing would otherwise flatten the
      // RTT saving out of the latency signal.
      spec.num_clients = 120;
      spec.duration_s = 0.1;
      spec.warmup_s = 0.03;
      return sim::SimulateHopsFs(sim::HopsTopology{5, 12}, spec, cal).latency_us.Mean() /
             1000.0;
    };
    std::printf("%-10d %16.2f %16.2f %11.1f%%\n", clients, simulate(mux_cap.pools),
                simulate(per_tx_cap.pools), 100.0 * mux_cap.co_scheduled_fraction);
    std::fflush(stdout);
  }
  std::printf("\nshape: with the mux, operation latency falls as client concurrency rises\n"
              "(merged windows share trips); the per-transaction baseline stays flat.\n");
  return 0;
}
