// Figure 8: average operation latency for an increasing number of
// concurrent clients (Spotify workload). Paper shape: HDFS latency blows up
// as requests queue behind the namesystem lock and RPC queues; HopsFS keeps
// latency low to thousands of clients because namenodes and database shards
// serve in parallel.
#include "bench_common.h"

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();
  std::printf("# Figure 8: average latency vs concurrent clients (Spotify mix)\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(mix);

  sim::Calibration cal;
  const std::vector<int> client_counts = {100, 200, 500, 1000, 2000, 4000, 6000};
  std::printf("\n%-10s %16s %16s\n", "clients", "HopsFS avg (ms)", "HDFS avg (ms)");
  for (int clients : client_counts) {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &env.pools;
    spec.num_clients = clients;
    spec.duration_s = 0.15;
    spec.warmup_s = 0.05;
    auto hops_result = sim::SimulateHopsFs(sim::HopsTopology{60, 12}, spec, cal);

    sim::WorkloadSpec hdfs_spec = spec;
    hdfs_spec.duration_s = 0.4;
    hdfs_spec.warmup_s = 0.1;
    auto hdfs_result = sim::SimulateHdfs(hdfs_spec, cal);

    std::printf("%-10d %16.2f %16.2f\n", clients, hops_result.latency_us.Mean() / 1000.0,
                hdfs_result.latency_us.Mean() / 1000.0);
    std::fflush(stdout);
  }
  std::printf("\nshape to compare with Figure 8: HDFS latency grows steeply with client\n"
              "count (ops queue at the single namenode); HopsFS stays low and flat.\n");
  return 0;
}
