// Contended multi-namenode mutation bench for the sharded hint-invalidation
// log: N namenodes run a bench_table2-style write-heavy mix (rename /
// rename-back / delete, all of which publish) over disjoint directories, so
// the ONLY rows any two namenodes could ever contend on are the
// invalidation log's. Pre-sharding, every rename/delete publish X-locked
// the one global seq row until commit -- a cluster-wide serialization point
// on the mutation path. The sharded log gives each publisher its own head
// row and log partition, and the async publish stage takes even the append
// latency off the mutation path, so publisher lock waits drop to ~0.
//
// Two phases per config:
//  * free-running: the raw mix; publisher lock waits here are organic
//    (they need true parallelism, so on a single-core box they may be 0
//    for both configs -- the stall probe below is the machine-independent
//    measurement);
//  * stalled-holder probe: one thread repeatedly holds the legacy global
//    seq row X-locked for a few milliseconds, the way a preempted, paging
//    or slow-committing publisher would. The global-seq baseline piles
//    every namenode's mutation path up behind the holder; the sharded
//    log's publishers never touch that row, so the probe has no effect.
//
// The ablation is config-selectable: `sharded` = hint_publish_async +
// per-NN partitions only; `global-seq` = synchronous appends that also
// X-lock the legacy kVarNextHintInvalidationSeq row (the pre-sharding
// serialization point, reproduced on today's code so everything else is
// held constant).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_common.h"
#include "util/thread_pool.h"

namespace {

struct PhaseResult {
  double wall_seconds = 0;
  uint64_t ops = 0;
  uint64_t lock_waits = 0;      // cluster-wide blocked acquisitions
  uint64_t prober_acquires = 0; // stall-probe lock attempts (see PublisherWaitsFloor)

  double OpsPerSec() const { return wall_seconds > 0 ? ops / wall_seconds : 0; }
  // The cluster counter cannot tell a publisher blocked behind the stalled
  // probe from the probe itself momentarily blocked behind a publisher's
  // microsecond hold. Subtracting every probe acquisition (each can wait at
  // most once) bounds the probe's contribution from above, making this a
  // conservative floor on the PUBLISHER lock waits.
  uint64_t PublisherWaitsFloor() const {
    return lock_waits > prober_acquires ? lock_waits - prober_acquires : 0;
  }
};

struct RunResult {
  PhaseResult free_running;
  PhaseResult stalled;
  uint64_t publish_events = 0;
  uint64_t publish_ops_coalesced = 0;
  uint64_t gc_acked_reaps = 0;
  uint64_t round_trips = 0;
  uint64_t overlapped_round_trips = 0;
  uint64_t cross_tx_overlapped_round_trips = 0;
};

RunResult RunWriteMix(bool sharded, int namenodes, int threads_per_nn, int files) {
  using namespace hops;
  fs::MiniClusterOptions options;
  options.db.num_datanodes = 8;
  options.db.replication = 2;
  options.num_namenodes = namenodes;
  options.num_datanodes = 3;
  options.fs.hint_publish_async = sharded;
  options.fs.hint_global_seq_lock = !sharded;
  auto cluster = *fs::MiniCluster::Start(options);

  // Disjoint per-worker directories, pre-populated so the measured phases
  // are pure mutation-with-publish (the setup's creates also warm each
  // namenode's id-chunk allocator, keeping the variables table untouched
  // during measurement unless the ablation itself locks it).
  for (int n = 0; n < namenodes; ++n) {
    for (int t = 0; t < threads_per_nn; ++t) {
      std::string base = "/w" + std::to_string(n) + "_" + std::to_string(t);
      if (!cluster->namenode(n).Mkdirs(base).ok()) std::abort();
      for (int i = 0; i < files; ++i) {
        const std::string f = base + "/f" + std::to_string(i);
        if (!cluster->namenode(n).Create(f, "c").ok()) std::abort();
        if (!cluster->namenode(n).CompleteFile(f, "c").ok()) std::abort();
      }
    }
  }

  // Every (rename, rename-back) round publishes twice and leaves the
  // namespace as it found it, so both phases run the same workload.
  auto run_phase = [&](bool stall_probe) {
    cluster->db().ResetStats();
    ThreadPool pool(namenodes * threads_per_nn);
    std::atomic<uint64_t> ops{0};
    std::atomic<bool> workers_done{false};
    const auto start = std::chrono::steady_clock::now();
    for (int n = 0; n < namenodes; ++n) {
      for (int t = 0; t < threads_per_nn; ++t) {
        pool.Submit([&, n, t] {
          fs::Namenode& nn = cluster->namenode(n);
          const std::string base = "/w" + std::to_string(n) + "_" + std::to_string(t);
          uint64_t done = 0;
          for (int i = 0; i < files; ++i) {
            const std::string f = base + "/f" + std::to_string(i);
            const std::string g = base + "/g" + std::to_string(i);
            if (!nn.Rename(f, g).ok()) continue;  // publishes src+dst prefixes
            if (!nn.Rename(g, f).ok()) continue;  // and back
            done += 2;
          }
          ops.fetch_add(done, std::memory_order_relaxed);
        });
      }
    }
    std::thread prober;
    std::atomic<uint64_t> prober_acquires{0};
    if (stall_probe) {
      prober = std::thread([&] {
        // A stalled publisher: holds the legacy global seq row X-locked for
        // 8ms at a time (think preemption or a slow disk flush mid-commit),
        // with brief gaps. The baseline's publishers must wait it out; the
        // sharded publishers never ask for this row. Every acquisition is
        // counted so the probe's own (rare, microsecond) blocked requests
        // can be bounded out of the reported publisher waits.
        while (!workers_done.load(std::memory_order_relaxed)) {
          auto tx = cluster->db().Begin();
          prober_acquires.fetch_add(1, std::memory_order_relaxed);
          auto held = tx->Read(cluster->schema().variables,
                               {fs::kVarNextHintInvalidationSeq},
                               ndb::LockMode::kExclusive);
          std::this_thread::sleep_for(std::chrono::milliseconds(8));
          if (held.ok()) {
            (void)tx->Commit();
          } else if (tx->active()) {
            tx->Abort();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    pool.Wait();
    cluster->FlushHintPublishes();  // async appends are part of the run's work
    workers_done.store(true, std::memory_order_relaxed);
    if (prober.joinable()) prober.join();
    PhaseResult p;
    p.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    p.ops = ops.load();
    p.lock_waits = cluster->db().StatsSnapshot().lock_waits;
    p.prober_acquires = prober_acquires.load();
    return p;
  };

  RunResult r;
  r.free_running = run_phase(/*stall_probe=*/false);
  auto db = cluster->db().StatsSnapshot();
  r.round_trips = db.round_trips;
  r.overlapped_round_trips = db.overlapped_round_trips;
  r.cross_tx_overlapped_round_trips = db.cross_tx_overlapped_round_trips;
  r.stalled = run_phase(/*stall_probe=*/true);
  auto hint = cluster->AggregateHintStats();
  r.publish_events = hint.publish_events;
  r.publish_ops_coalesced = hint.publish_ops_coalesced;
  // A couple of ticks so the ack-based GC shows up in the report.
  cluster->TickHeartbeats(2);
  r.gc_acked_reaps = cluster->AggregateHintStats().gc_acked_reaps;
  return r;
}

}  // namespace

int main() {
  const bool full = std::getenv("HOPS_BENCH_FULL") != nullptr;
  const int namenodes = full ? 6 : 4;
  const int threads_per_nn = full ? 3 : 2;
  const int files = full ? 400 : 120;

  std::printf("# Contended multi-NN write mix: sharded hint log vs global-seq baseline\n");
  std::printf("# %d namenodes x %d mutating threads x %d rename-pair rounds, "
              "disjoint dirs\n\n",
              namenodes, threads_per_nn, files);

  hops::bench::BenchJson json("hintlog_publish");
  std::printf("%-12s %10s %12s | %12s %14s | %10s %10s %12s\n", "config", "ops/s",
              "lock waits", "stall ops/s", "stall waits", "publishes", "coalesced",
              "acked reaps");
  RunResult results[2];
  const char* labels[2] = {"global-seq", "sharded"};
  for (int mode = 0; mode < 2; ++mode) {
    const bool sharded = mode == 1;
    RunResult r = RunWriteMix(sharded, namenodes, threads_per_nn, files);
    results[mode] = r;
    std::printf("%-12s %10.0f %12llu | %12.0f %14llu | %10llu %10llu %12llu\n",
                labels[mode], r.free_running.OpsPerSec(),
                static_cast<unsigned long long>(r.free_running.lock_waits),
                r.stalled.OpsPerSec(),
                static_cast<unsigned long long>(r.stalled.PublisherWaitsFloor()),
                static_cast<unsigned long long>(r.publish_events),
                static_cast<unsigned long long>(r.publish_ops_coalesced),
                static_cast<unsigned long long>(r.gc_acked_reaps));
    std::fflush(stdout);
    std::string prefix = sharded ? "sharded_" : "global_seq_";
    json.Metric(prefix + "ops_per_sec", r.free_running.OpsPerSec());
    json.Metric(prefix + "lock_waits", static_cast<double>(r.free_running.lock_waits));
    json.Metric(prefix + "stall_ops_per_sec", r.stalled.OpsPerSec());
    json.Metric(prefix + "stall_publisher_lock_waits_floor",
                static_cast<double>(r.stalled.PublisherWaitsFloor()));
    json.Metric(prefix + "stall_lock_waits_total",
                static_cast<double>(r.stalled.lock_waits));
    json.Metric(prefix + "stall_prober_acquires",
                static_cast<double>(r.stalled.prober_acquires));
    json.Metric(prefix + "publish_events", static_cast<double>(r.publish_events));
    json.Metric(prefix + "publish_ops_coalesced",
                static_cast<double>(r.publish_ops_coalesced));
    json.Metric(prefix + "gc_acked_reaps", static_cast<double>(r.gc_acked_reaps));
    json.Metric(prefix + "round_trips", static_cast<double>(r.round_trips));
    json.Metric(prefix + "overlapped_round_trips",
                static_cast<double>(r.overlapped_round_trips));
  }

  // Accounting sanity with the coalesced publish path in play: the
  // cross-transaction share of the overlap can never exceed the overlap.
  for (const RunResult& r : results) {
    if (r.cross_tx_overlapped_round_trips > r.overlapped_round_trips) {
      std::fprintf(stderr, "FAIL: cross-tx overlap exceeds total overlap\n");
      return 1;
    }
  }
  if (results[1].stalled.lock_waits > 0) {
    std::printf("\nWARNING: sharded run waited on the stalled probe row (%llu waits) -- "
                "the publish path should never touch it\n",
                static_cast<unsigned long long>(results[1].stalled.lock_waits));
  }
  std::printf("\nshape: the global-seq baseline serializes every publisher on one row --\n"
              "a single stalled holder of that row stalls every namenode's mutation path\n"
              "(stall ops/s collapses, waits pile up). The sharded log's publishers touch\n"
              "only their own head row + partition: the same stalled row costs them\n"
              "nothing, free-running waits stay ~0, and the async stage coalesces bursts\n"
              "into fewer appends than ops published.\n");
  return 0;
}
