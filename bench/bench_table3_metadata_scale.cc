// Table 3: metadata (namespace) scalability -- how many files fit in a given
// amount of metadata memory.
//
// HDFS: ~448 + L bytes per file on the JVM heap (2 blocks, L = name
// length), but the heap cannot usefully grow past ~200 GB (GC pauses), so
// HDFS "does not scale" beyond that row. HopsFS: bytes per file measured
// from this repository's NDB engine (replication 2), compared with the
// paper's 1552 bytes; NDB scales to 48 datanodes x 512 GB = 24 TB.
#include <cstdio>

#include "hopsfs/mini_cluster.h"
#include "workload/namespace_gen.h"

int main() {
  using namespace hops;
  // Measure HopsFS bytes/file by loading a representative namespace (10-char
  // names as in the paper's example, 2 blocks per file, NDB replication 2).
  fs::MiniClusterOptions options;
  options.db.num_datanodes = 12;
  options.db.replication = 2;
  options.num_namenodes = 1;
  options.num_datanodes = 3;
  auto cluster = *fs::MiniCluster::Start(options);

  wl::NamespaceShape shape;
  shape.name_length = 10;
  constexpr int64_t kFiles = 20000;
  auto ns = wl::PlanNamespace(shape, kFiles, 3);
  size_t before = cluster->db().TotalMemoryBytes();
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  // Exactly 2 blocks per file to match the paper's example file.
  auto loaded = loader.Load(ns, 2.0, 3, 3);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  size_t used = cluster->db().TotalMemoryBytes() - before;
  double hops_bytes_per_file = static_cast<double>(used) / static_cast<double>(kFiles);
  const double hdfs_bytes_per_file = 448 + 10;  // paper's model, L = 10

  std::printf("# Table 3: metadata scalability\n");
  std::printf("measured HopsFS bytes/file (R=2, 2 blocks, 3 replicas): %.0f (paper: 1552)\n",
              hops_bytes_per_file);
  std::printf("HDFS bytes/file model: %.0f (paper: 448 + L)\n\n", hdfs_bytes_per_file);

  struct MemRow {
    const char* label;
    double gigabytes;
    bool hdfs_scales;
  };
  const std::vector<MemRow> rows = {
      {"1 GB", 1, true},       {"50 GB", 50, true},   {"100 GB", 100, true},
      {"200 GB", 200, true},   {"500 GB", 500, false}, {"1 TB", 1024, false},
      {"24 TB", 24 * 1024, false},
  };
  std::printf("%-8s %22s %22s\n", "memory", "HDFS files", "HopsFS files");
  for (const auto& row : rows) {
    double bytes = row.gigabytes * 1024.0 * 1024.0 * 1024.0;
    char hdfs_cell[32];
    if (row.hdfs_scales) {
      std::snprintf(hdfs_cell, sizeof(hdfs_cell), "%.1f million",
                    bytes / hdfs_bytes_per_file / 1e6);
    } else {
      std::snprintf(hdfs_cell, sizeof(hdfs_cell), "does not scale");
    }
    double hops_files = bytes / hops_bytes_per_file;
    char hops_cell[32];
    if (hops_files >= 1e9) {
      std::snprintf(hops_cell, sizeof(hops_cell), "%.1f billion", hops_files / 1e9);
    } else {
      std::snprintf(hops_cell, sizeof(hops_cell), "%.1f million", hops_files / 1e6);
    }
    std::printf("%-8s %22s %22s\n", row.label, hdfs_cell, hops_cell);
  }
  std::printf("\npaper reference: 1 GB -> HDFS 2.3M / HopsFS 0.69M; 24 TB -> HopsFS 17B\n");
  std::printf("capacity ratio HopsFS(24TB)/HDFS(200GB ceiling): %.0fx (paper: ~37x)\n",
              (24.0 * 1024 * 1024 * 1024 * 1024 / hops_bytes_per_file) /
                  (200.0 * 1024 * 1024 * 1024 / hdfs_bytes_per_file));
  return 0;
}
