// Figure 6: HopsFS and HDFS throughput for the Spotify workload.
// Sweeps namenode count for NDB cluster sizes {2,4,8,12}, plus the
// 12-node-NDB hotspot variant (every path under /shared-dir, §7.2.1) and
// the HDFS baseline. Series shapes to compare with the paper: linear
// scaling in namenodes until the NDB cluster saturates; the 2-node curve
// flattens earliest; the hotspot curve is bounded by a single shard but
// still beats HDFS; HDFS is flat regardless of offered load.
#include "bench_common.h"

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();

  std::printf("# Figure 6: Spotify-workload throughput (ops/sec)\n");
  std::printf("# capturing traces (uniform namespace)...\n");
  auto uniform = bench::MakeCapture(mix);
  std::printf("# capturing traces (hotspot namespace under /shared-dir)...\n");
  auto hotspot = bench::MakeCapture(mix, 8000, 32, 16, "/shared-dir");

  const std::vector<int> nn_counts = {1, 5, 10, 20, 30, 45, 60};
  const std::vector<int> ndb_sizes = {2, 4, 8, 12};

  std::printf("\n%-10s", "namenodes");
  for (int ndb : ndb_sizes) std::printf(" %12s", ("ndb" + std::to_string(ndb)).c_str());
  std::printf(" %12s\n", "hotspot12");

  sim::Calibration cal;
  for (int nn : nn_counts) {
    std::printf("%-10d", nn);
    for (int ndb : ndb_sizes) {
      sim::WorkloadSpec spec;
      spec.mix = &mix;
      spec.traces = &uniform.pools;
      spec.num_clients = bench::SaturatingClients(nn);
      spec.duration_s = 0.12;
      spec.warmup_s = 0.04;
      auto r = sim::SimulateHopsFs(sim::HopsTopology{nn, ndb}, spec, cal);
      std::printf(" %12.0f", r.ops_per_sec);
    }
    {
      sim::WorkloadSpec spec;
      spec.mix = &mix;
      spec.traces = &hotspot.pools;
      spec.num_clients = bench::SaturatingClients(nn);
      spec.duration_s = 0.12;
      spec.warmup_s = 0.04;
      auto r = sim::SimulateHopsFs(sim::HopsTopology{nn, 12}, spec, cal);
      std::printf(" %12.0f", r.ops_per_sec);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  sim::WorkloadSpec hdfs_spec;
  hdfs_spec.mix = &mix;
  hdfs_spec.num_clients = 512;
  hdfs_spec.duration_s = 0.3;
  hdfs_spec.warmup_s = 0.05;
  auto hdfs = sim::SimulateHdfs(hdfs_spec, cal);
  std::printf("\nHDFS (5-server HA setup): %.0f ops/sec (paper: 78.9K)\n", hdfs.ops_per_sec);
  std::printf("paper reference points: 60 NN x 12-node NDB = 1.25M ops/sec;\n");
  std::printf("equivalent hardware (3 NN, 2-node NDB) ~ 1.1x HDFS; hotspot ~ 3x HDFS\n");

  {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &uniform.pools;
    spec.num_clients = 300;
    spec.duration_s = 0.2;
    spec.warmup_s = 0.05;
    auto r = sim::SimulateHopsFs(sim::HopsTopology{3, 2}, spec, cal);
    std::printf("equivalent-hardware check: HopsFS 3NNx2NDB = %.0f ops/sec (%.2fx HDFS)\n",
                r.ops_per_sec, r.ops_per_sec / hdfs.ops_per_sec);
  }
  return 0;
}
