// Figure 6: HopsFS and HDFS throughput for the Spotify workload.
// Sweeps namenode count for NDB cluster sizes {2,4,8,12}, plus the
// 12-node-NDB hotspot variant (every path under /shared-dir, §7.2.1) and
// the HDFS baseline. Series shapes to compare with the paper: linear
// scaling in namenodes until the NDB cluster saturates; the 2-node curve
// flattens earliest; the hotspot curve is bounded by a single shard but
// still beats HDFS; HDFS is flat regardless of offered load.
//
// Also runs the inode hint-cache ablation (§5.1): the same closed loop on a
// real MiniCluster with (a) the trie cache plus proactive invalidation-log
// draining, (b) the cache with lazy repair-on-miss only, and (c) the cache
// disabled -- reporting throughput, database round trips per op, and the
// cache counters.
#include <atomic>
#include <cstdlib>
#include <thread>

#include "bench_common.h"

namespace {

void RunHintCacheAblation(const hops::wl::OpMix& mix, hops::bench::BenchJson& json) {
  using namespace hops;
  const bool full = std::getenv("HOPS_BENCH_FULL") != nullptr;
  const int64_t files = full ? 4000 : 800;
  const int threads = 4;
  const int64_t ops_per_thread = full ? 2500 : 500;

  std::printf("\n# hint-cache ablation (real 3-NN MiniCluster, closed loop)\n");
  std::printf("%-10s %10s %12s %9s %12s %12s %12s\n", "cache", "ops/sec", "trips/op",
              "hit-rate", "invalidated", "proactive", "stale-puts");

  struct Cfg {
    const char* label;
    size_t capacity;
    bool proactive;
  };
  for (const Cfg& cfg : {Cfg{"proactive", size_t{1} << 20, true},
                         Cfg{"lazy", size_t{1} << 20, false},  //
                         Cfg{"off", 0, false}}) {
    fs::MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.num_namenodes = 3;
    options.num_datanodes = 3;
    options.fs.hint_cache_capacity = cfg.capacity;
    options.fs.hint_proactive_invalidation = cfg.proactive;
    auto cluster = *fs::MiniCluster::Start(options);
    wl::NamespaceShape shape;
    auto ns = wl::PlanNamespace(shape, files, 11);
    wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
    if (!loader.Load(ns, 1.3, 0, 11).ok()) std::abort();
    cluster->db().ResetStats();

    // The heartbeat ticker is what drains the invalidation log mid-run.
    std::atomic<bool> stop{false};
    std::thread ticker([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        cluster->TickHeartbeats();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    wl::DriverOptions dopts;
    dopts.num_threads = threads;
    dopts.ops_per_thread = ops_per_thread;
    dopts.seed = 11;
    auto report = wl::RunDriver(
        [&](int t) {
          return wl::MakeHopsAdapter(
              cluster->NewClient(fs::NamenodePolicy::kRoundRobin,
                                 "ablate" + std::to_string(t),
                                 70 + static_cast<uint64_t>(t)));
        },
        ns, mix, dopts);
    stop.store(true);
    ticker.join();
    wl::FillHintStats(*cluster, report);

    auto db = cluster->db().StatsSnapshot();
    const auto& hint = *report.hint_stats;
    std::printf("%-10s %10.0f %12.2f %8.1f%% %12llu %12llu %12llu\n", cfg.label,
                report.ops_per_second,
                report.ops > 0 ? static_cast<double>(db.round_trips) /
                                     static_cast<double>(report.ops)
                               : 0.0,
                100.0 * hint.HitRate(),
                static_cast<unsigned long long>(hint.cache.entries_invalidated),
                static_cast<unsigned long long>(hint.proactive_applied),
                static_cast<unsigned long long>(hint.cache.stale_put_rejections));
    std::fflush(stdout);
    std::string prefix = std::string("ablation_") + cfg.label + "_";
    json.Metric(prefix + "ops_per_sec", report.ops_per_second);
    json.Metric(prefix + "trips_per_op",
                report.ops > 0 ? static_cast<double>(db.round_trips) /
                                     static_cast<double>(report.ops)
                               : 0.0);
    json.Metric(prefix + "hit_rate", hint.HitRate());
    json.Metric(prefix + "proactive_applied",
                static_cast<double>(hint.proactive_applied));
    json.Metric(prefix + "publish_events", static_cast<double>(hint.publish_events));
    json.Metric(prefix + "publish_ops_coalesced",
                static_cast<double>(hint.publish_ops_coalesced));
    json.Metric(prefix + "gc_acked_reaps", static_cast<double>(hint.gc_acked_reaps));
  }
}

}  // namespace

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();

  std::printf("# Figure 6: Spotify-workload throughput (ops/sec)\n");
  std::printf("# capturing traces (uniform namespace)...\n");
  auto uniform = bench::MakeCapture(mix);
  std::printf("# capturing traces (hotspot namespace under /shared-dir)...\n");
  auto hotspot = bench::MakeCapture(mix, 8000, 32, 16, "/shared-dir");

  const std::vector<int> nn_counts = {1, 5, 10, 20, 30, 45, 60};
  const std::vector<int> ndb_sizes = {2, 4, 8, 12};

  std::printf("\n%-10s", "namenodes");
  for (int ndb : ndb_sizes) std::printf(" %12s", ("ndb" + std::to_string(ndb)).c_str());
  std::printf(" %12s\n", "hotspot12");

  sim::Calibration cal;
  bench::BenchJson json("fig06_spotify_throughput");
  for (int nn : nn_counts) {
    std::printf("%-10d", nn);
    for (int ndb : ndb_sizes) {
      sim::WorkloadSpec spec;
      spec.mix = &mix;
      spec.traces = &uniform.pools;
      spec.num_clients = bench::SaturatingClients(nn);
      spec.duration_s = 0.12;
      spec.warmup_s = 0.04;
      auto r = sim::SimulateHopsFs(sim::HopsTopology{nn, ndb}, spec, cal);
      std::printf(" %12.0f", r.ops_per_sec);
      json.Metric("nn" + std::to_string(nn) + "_ndb" + std::to_string(ndb) +
                      "_ops_per_sec",
                  r.ops_per_sec);
    }
    {
      sim::WorkloadSpec spec;
      spec.mix = &mix;
      spec.traces = &hotspot.pools;
      spec.num_clients = bench::SaturatingClients(nn);
      spec.duration_s = 0.12;
      spec.warmup_s = 0.04;
      auto r = sim::SimulateHopsFs(sim::HopsTopology{nn, 12}, spec, cal);
      std::printf(" %12.0f", r.ops_per_sec);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  sim::WorkloadSpec hdfs_spec;
  hdfs_spec.mix = &mix;
  hdfs_spec.num_clients = 512;
  hdfs_spec.duration_s = 0.3;
  hdfs_spec.warmup_s = 0.05;
  auto hdfs = sim::SimulateHdfs(hdfs_spec, cal);
  json.Metric("hdfs_ops_per_sec", hdfs.ops_per_sec);
  std::printf("\nHDFS (5-server HA setup): %.0f ops/sec (paper: 78.9K)\n", hdfs.ops_per_sec);
  std::printf("paper reference points: 60 NN x 12-node NDB = 1.25M ops/sec;\n");
  std::printf("equivalent hardware (3 NN, 2-node NDB) ~ 1.1x HDFS; hotspot ~ 3x HDFS\n");

  {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &uniform.pools;
    spec.num_clients = 300;
    spec.duration_s = 0.2;
    spec.warmup_s = 0.05;
    auto r = sim::SimulateHopsFs(sim::HopsTopology{3, 2}, spec, cal);
    std::printf("equivalent-hardware check: HopsFS 3NNx2NDB = %.0f ops/sec (%.2fx HDFS)\n",
                r.ops_per_sec, r.ops_per_sec / hdfs.ops_per_sec);
  }

  RunHintCacheAblation(mix, json);
  return 0;
}
