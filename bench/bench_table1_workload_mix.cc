// Table 1: relative frequency of file system operations (Spotify trace).
// Validates that the workload generator reproduces the published mix, and
// prints expected vs. sampled frequencies.
#include <cstdio>
#include <map>

#include "util/rng.h"
#include "workload/spec.h"

int main() {
  using namespace hops::wl;
  OpMix mix = OpMix::Spotify();
  OpSampler sampler(mix);
  hops::Rng rng(1);
  constexpr int kSamples = 2000000;
  std::map<OpType, int64_t> counts;
  std::map<OpType, int64_t> dir_counts;
  for (int i = 0; i < kSamples; ++i) {
    auto [op, on_dir] = sampler.Sample(rng);
    counts[op]++;
    if (on_dir) dir_counts[op]++;
  }
  std::printf("Table 1: relative frequency of file system operations (Spotify)\n");
  std::printf("%-18s %10s %10s %14s\n", "operation", "paper %", "sampled %", "dir-share %");
  double read_total = 0;
  for (const auto& e : mix.entries) {
    double sampled = 100.0 * static_cast<double>(counts[e.op]) / kSamples;
    double dir_share =
        counts[e.op] > 0
            ? 100.0 * static_cast<double>(dir_counts[e.op]) / static_cast<double>(counts[e.op])
            : 0.0;
    std::printf("%-18s %10.2f %10.2f %14.1f\n", std::string(OpTypeName(e.op)).c_str(),
                e.pct, sampled, dir_share);
    if (e.op == OpType::kList || e.op == OpType::kStat || e.op == OpType::kRead ||
        e.op == OpType::kContentSummary) {
      read_total += sampled;
    }
  }
  std::printf("%-18s %10.2f %10.2f\n", "total read ops", 94.74, read_total);
  return 0;
}
