// Figure 9: 99th-percentile latency of common operations with both systems
// running at 50% of their maximum Spotify-workload throughput. Paper
// reference: HopsFS touch 100.8ms / read 8.6ms / ls dir 11.4ms / stat dir
// 8.5ms; HDFS touch 101.8ms / read 1.5ms / ls 0.9ms / stat 1.5ms. Shape:
// unloaded HDFS reads are faster (all in RAM); both systems' create p99 is
// dominated by queueing behind mutations.
#include "bench_common.h"

namespace {

// Finds a client count whose throughput is ~50% of the saturated rate.
template <typename RunFn>
int HalfLoadClients(const RunFn& run, int saturating_clients) {
  double max_rate = run(saturating_clients).ops_per_sec;
  int lo = 1, hi = saturating_clients;
  int best = saturating_clients / 2;
  for (int iter = 0; iter < 8; ++iter) {
    int mid = (lo + hi) / 2;
    double rate = run(mid).ops_per_sec;
    if (rate < 0.48 * max_rate) {
      lo = mid + 1;
    } else if (rate > 0.52 * max_rate) {
      hi = mid - 1;
      best = mid;
    } else {
      return mid;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace hops;
  auto mix = wl::OpMix::Spotify();
  std::printf("# Figure 9: p99 latency per operation at 50%% load (Spotify mix)\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(mix);

  sim::Calibration cal;
  auto run_hops = [&](int clients) {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &env.pools;
    spec.num_clients = clients;
    spec.duration_s = 0.12;
    spec.warmup_s = 0.04;
    return sim::SimulateHopsFs(sim::HopsTopology{60, 12}, spec, cal);
  };
  auto run_hdfs = [&](int clients) {
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.num_clients = clients;
    spec.duration_s = 0.4;
    spec.warmup_s = 0.1;
    return sim::SimulateHdfs(spec, cal);
  };

  int hops_clients = HalfLoadClients(run_hops, bench::SaturatingClients(60));
  int hdfs_clients = HalfLoadClients(run_hdfs, 2000);
  std::printf("# 50%% load: HopsFS %d clients, HDFS %d clients\n", hops_clients,
              hdfs_clients);
  auto hops_result = run_hops(hops_clients);
  auto hdfs_result = run_hdfs(hdfs_clients);

  struct OpRow {
    const char* label;
    wl::OpType op;
  };
  const std::vector<OpRow> ops = {{"create file", wl::OpType::kCreateFile},
                                  {"read file", wl::OpType::kRead},
                                  {"ls dir", wl::OpType::kList},
                                  {"stat dir", wl::OpType::kStat}};
  std::printf("\n%-12s %16s %16s\n", "operation", "HopsFS p99 (ms)", "HDFS p99 (ms)");
  for (const auto& row : ops) {
    auto hops_it = hops_result.per_op_latency_us.find(row.op);
    auto hdfs_it = hdfs_result.per_op_latency_us.find(row.op);
    double hp = hops_it != hops_result.per_op_latency_us.end()
                    ? hops_it->second.Percentile(0.99) / 1000.0
                    : 0;
    double dp = hdfs_it != hdfs_result.per_op_latency_us.end()
                    ? hdfs_it->second.Percentile(0.99) / 1000.0
                    : 0;
    std::printf("%-12s %16.2f %16.2f\n", row.label, hp, dp);
  }
  std::printf("\npaper reference: HopsFS create/read/ls/stat = 100.8/8.6/11.4/8.5 ms;\n");
  std::printf("HDFS = 101.8/1.5/0.9/1.5 ms. Shape: HDFS read-side p99 lower (in-RAM),\n");
  std::printf("HopsFS pays database round trips; create p99 similar for both.\n");
  return 0;
}
