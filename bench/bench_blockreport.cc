// §7.7: block report performance. The paper: 150 datanodes each report
// 100K blocks; HopsFS processes 30 reports/s with 30 namenodes while HDFS
// manages 60/s -- HopsFS reads a lot of metadata over the network per
// report, but needs full reports far less often because block locations are
// persistent in the database.
//
// This benchmark measures the real HopsFS engine processing scaled-down
// reports (default 150 datanodes x 2K blocks; HOPS_BENCH_FULL=1 for 100K)
// and compares per-report work against an in-memory HDFS-style block map.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "hopsfs/mini_cluster.h"
#include "util/clock.h"
#include "workload/namespace_gen.h"

int main() {
  using namespace hops;
  const bool full = std::getenv("HOPS_BENCH_FULL") != nullptr;
  const int num_dns = 15;                        // scaled from 150
  const int blocks_per_dn = full ? 100000 : 2000;  // scaled from 100K

  fs::MiniClusterOptions options;
  options.db.num_datanodes = 12;
  options.db.replication = 2;
  options.db.partitions_per_table = 48;
  options.num_namenodes = 2;
  options.num_datanodes = num_dns;
  auto cluster = *fs::MiniCluster::Start(options);

  // Populate: files of 1 block each, spread across the datanodes.
  int64_t total_blocks = static_cast<int64_t>(num_dns) * blocks_per_dn;
  wl::NamespaceShape shape;
  shape.files_per_dir = 128;
  shape.top_level_dirs = 32;
  auto ns = wl::PlanNamespace(shape, total_blocks, 13);
  wl::BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
  if (!loader.Load(ns, 1.0, 0, 13).ok()) return 1;

  // Assign block replicas to datanodes round-robin (1 replica per block to
  // keep the scaled run tractable) by registering them via block reports'
  // repair path: instead, insert replica rows directly.
  {
    auto tx = cluster->db().Begin();
    auto rows = tx->FullTableScan(cluster->schema().block_lookup);
    int i = 0;
    auto wtx = cluster->db().Begin();
    for (const auto& row : *rows) {
      fs::BlockId block = row[fs::col::kLookupBlock].i64();
      fs::InodeId inode = row[fs::col::kLookupInode].i64();
      int dn_index = i % num_dns;
      cluster->datanode(dn_index).StoreBlock(block);
      fs::Replica rep{inode, block, cluster->datanode(dn_index).id(),
                      fs::ReplicaState::kFinalized};
      (void)wtx->Insert(cluster->schema().replicas, fs::ToRow(rep));
      if (++i % 512 == 0) {
        (void)wtx->Commit();
        wtx = cluster->db().Begin();
      }
    }
    (void)wtx->Commit();
  }

  std::printf("# Block report performance (§7.7), %d datanodes x %d blocks%s\n",
              num_dns, blocks_per_dn, full ? "" : " (50x scaled; HOPS_BENCH_FULL=1)");

  // HopsFS: process every datanode's report; measure wall time.
  int64_t t0 = MonotonicMicros();
  auto stats_before = cluster->db().StatsSnapshot();
  for (int d = 0; d < num_dns; ++d) {
    auto& dn = cluster->datanode(d);
    auto result = cluster->namenode(d % 2).ProcessBlockReport(dn.id(),
                                                              dn.GenerateBlockReport());
    if (!result.ok()) return 1;
  }
  double hops_seconds = static_cast<double>(MonotonicMicros() - t0) / 1e6;
  auto stats_after = cluster->db().StatsSnapshot();
  int64_t rows_read =
      static_cast<int64_t>(stats_after.rows_read - stats_before.rows_read);
  int64_t round_trips =
      static_cast<int64_t>(stats_after.round_trips - stats_before.round_trips);
  double hops_reports_per_sec = num_dns / hops_seconds;

  // HDFS-style baseline: validate each report against an in-memory block
  // map (hash lookups only, no network).
  std::unordered_map<fs::BlockId, fs::InodeId> block_map;
  {
    auto tx = cluster->db().Begin();
    auto rows = tx->FullTableScan(cluster->schema().block_lookup);
    for (const auto& row : *rows) {
      block_map[row[fs::col::kLookupBlock].i64()] = row[fs::col::kLookupInode].i64();
    }
  }
  t0 = MonotonicMicros();
  int64_t matched = 0;
  for (int d = 0; d < num_dns; ++d) {
    for (fs::BlockId b : cluster->datanode(d).GenerateBlockReport()) {
      matched += block_map.count(b) ? 1 : 0;
    }
  }
  double hdfs_seconds = static_cast<double>(MonotonicMicros() - t0) / 1e6;
  double hdfs_reports_per_sec = num_dns / std::max(hdfs_seconds, 1e-9);

  std::printf("\nHopsFS : %6.1f reports/s (2 namenodes), %lld DB rows read per report\n",
              hops_reports_per_sec,
              static_cast<long long>(rows_read / num_dns));
  std::printf("         %lld simulated DB round trips per report with batching;\n",
              static_cast<long long>(round_trips / num_dns));
  std::printf("         a per-row read path would need >= %lld (one per row read) -- "
              "%.0fx more\n",
              static_cast<long long>(rows_read / num_dns),
              static_cast<double>(rows_read) / std::max<int64_t>(round_trips, 1));
  std::printf("HDFS   : %6.1f reports/s (in-memory block map, %lld blocks matched)\n",
              hdfs_reports_per_sec, static_cast<long long>(matched));
  std::printf("ratio  : HDFS processes %.1fx more reports/s per namenode\n",
              hdfs_reports_per_sec / hops_reports_per_sec);
  std::printf("\npaper reference: HopsFS 30 reports/s (30 NNs) vs HDFS 60 reports/s --\n");
  std::printf("HDFS is ~2x faster per report because HopsFS reads block metadata over\n");
  std::printf("the network; but HopsFS persists block locations and needs full reports\n");
  std::printf("far less often (the paper sizes 6-hourly reports for an exabyte cluster).\n");
  return 0;
}
