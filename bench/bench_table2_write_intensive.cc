// Table 2: HopsFS (60 namenodes, 12-node NDB) vs HDFS for increasingly
// write-intensive workloads. The paper reports scaling factors of 16x
// (2.7% file writes), 22x (5%), 30x (10%) and 37x (20%) -- the factor grows
// with the write share because HDFS serializes every mutation behind the
// global namesystem lock while HopsFS only locks individual inodes.
#include "bench_common.h"

int main() {
  using namespace hops;
  auto spotify = wl::OpMix::Spotify();
  std::printf("# Table 2: scalability for write-intensive workloads\n");
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(spotify);

  struct Row {
    const char* label;
    double file_write_pct;
    double paper_hops_mops;
    double paper_hdfs_kops;
    int paper_factor;
  };
  const std::vector<Row> rows = {
      {"Spotify Workload (2.7% File Writes)", 2.7, 1.25, 78.9, 16},
      {"Synthetic Workload (5.0% File Writes)", 5.0, 1.19, 53.6, 22},
      {"Synthetic Workload (10% File Writes)", 10.0, 1.04, 35.2, 30},
      {"Synthetic Workload (20% File Writes)", 20.0, 0.748, 19.9, 37},
  };

  sim::Calibration cal;
  bench::BenchJson json("table2_write_intensive");
  std::printf("\n%-42s %12s %12s %8s %14s\n", "workload", "HopsFS op/s", "HDFS op/s",
              "factor", "paper factor");
  for (const auto& row : rows) {
    wl::OpMix mix = row.file_write_pct == 2.7 ? spotify
                                              : wl::OpMix::WriteIntensive(row.file_write_pct);
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &env.pools;
    spec.num_clients = bench::SaturatingClients(60);
    spec.duration_s = 0.12;
    spec.warmup_s = 0.04;
    auto hops_result = sim::SimulateHopsFs(sim::HopsTopology{60, 12}, spec, cal);

    sim::WorkloadSpec hdfs_spec;
    hdfs_spec.mix = &mix;
    hdfs_spec.num_clients = 512;
    hdfs_spec.duration_s = 0.3;
    hdfs_spec.warmup_s = 0.05;
    auto hdfs_result = sim::SimulateHdfs(hdfs_spec, cal);

    std::printf("%-42s %12.0f %12.0f %7.1fx %13dx\n", row.label, hops_result.ops_per_sec,
                hdfs_result.ops_per_sec, hops_result.ops_per_sec / hdfs_result.ops_per_sec,
                row.paper_factor);
    std::fflush(stdout);
    char key[64];
    std::snprintf(key, sizeof(key), "writes_%.1fpct", row.file_write_pct);
    json.Metric(std::string(key) + "_hops_ops_per_sec", hops_result.ops_per_sec);
    json.Metric(std::string(key) + "_hdfs_ops_per_sec", hdfs_result.ops_per_sec);
    json.Metric(std::string(key) + "_factor",
                hops_result.ops_per_sec / hdfs_result.ops_per_sec);
  }
  return 0;
}
