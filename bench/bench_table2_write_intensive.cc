// Table 2: HopsFS (60 namenodes, 12-node NDB) vs HDFS for increasingly
// write-intensive workloads. The paper reports scaling factors of 16x
// (2.7% file writes), 22x (5%), 30x (10%) and 37x (20%) -- the factor grows
// with the write share because HDFS serializes every mutation behind the
// global namesystem lock while HopsFS only locks individual inodes.
#include <thread>

#include "bench_common.h"
#include "util/clock.h"
#include "util/histogram.h"

int main() {
  using namespace hops;
  auto spotify = wl::OpMix::Spotify();
  std::printf("# Table 2: scalability for write-intensive workloads\n");
  std::printf("# kv engine: %s\n",
              std::string(kv::EngineKindName(bench::BenchEngineKind())).c_str());
  std::printf("# capturing traces...\n");
  auto env = bench::MakeCapture(spotify);

  struct Row {
    const char* label;
    double file_write_pct;
    double paper_hops_mops;
    double paper_hdfs_kops;
    int paper_factor;
  };
  const std::vector<Row> rows = {
      {"Spotify Workload (2.7% File Writes)", 2.7, 1.25, 78.9, 16},
      {"Synthetic Workload (5.0% File Writes)", 5.0, 1.19, 53.6, 22},
      {"Synthetic Workload (10% File Writes)", 10.0, 1.04, 35.2, 30},
      {"Synthetic Workload (20% File Writes)", 20.0, 0.748, 19.9, 37},
  };

  sim::Calibration cal;
  bench::BenchJson json("table2_write_intensive");
  std::printf("\n%-42s %12s %12s %8s %14s\n", "workload", "HopsFS op/s", "HDFS op/s",
              "factor", "paper factor");
  for (const auto& row : rows) {
    wl::OpMix mix = row.file_write_pct == 2.7 ? spotify
                                              : wl::OpMix::WriteIntensive(row.file_write_pct);
    sim::WorkloadSpec spec;
    spec.mix = &mix;
    spec.traces = &env.pools;
    spec.num_clients = bench::SaturatingClients(60);
    spec.duration_s = 0.12;
    spec.warmup_s = 0.04;
    auto hops_result = sim::SimulateHopsFs(sim::HopsTopology{60, 12}, spec, cal);

    sim::WorkloadSpec hdfs_spec;
    hdfs_spec.mix = &mix;
    hdfs_spec.num_clients = 512;
    hdfs_spec.duration_s = 0.3;
    hdfs_spec.warmup_s = 0.05;
    auto hdfs_result = sim::SimulateHdfs(hdfs_spec, cal);

    std::printf("%-42s %12.0f %12.0f %7.1fx %13dx\n", row.label, hops_result.ops_per_sec,
                hdfs_result.ops_per_sec, hops_result.ops_per_sec / hdfs_result.ops_per_sec,
                row.paper_factor);
    std::fflush(stdout);
    char key[64];
    std::snprintf(key, sizeof(key), "writes_%.1fpct", row.file_write_pct);
    json.Metric(std::string(key) + "_hops_ops_per_sec", hops_result.ops_per_sec);
    json.Metric(std::string(key) + "_hdfs_ops_per_sec", hdfs_result.ops_per_sec);
    json.Metric(std::string(key) + "_factor",
                hops_result.ops_per_sec / hdfs_result.ops_per_sec);
  }

  // --- Asynchronous metadata commits: acknowledged latency A/B --------------
  // Real-cluster (no DES) comparison of the async commit pipeline against
  // synchronous commits on a write-heavy script: each client thread makes a
  // private directory tree and floods it with creates, mkdirs and chmods.
  // Async mode acknowledges at intent durability (one group-committed log
  // append) instead of full transaction commit, so the per-op acknowledged
  // latency drops while APPLIED throughput -- the wall clock runs until
  // DrainIntents() returns, i.e. every acknowledged mutation is a committed
  // database transaction -- stays comparable: the applier performs the same
  // transactions, just off the ack path.
  struct ModeResult {
    Histogram latency;  // per-op acknowledged wall latency (us)
    double applied_ops_per_sec = 0;
    fs::ClusterIntentStats intents;
    kv::ClusterStats db_stats;
  };
  auto run_mode = [&](bool async) {
    ModeResult res;
    fs::MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.fs.num_handlers = 4;
    options.fs.async_metadata_commit = async;
    options.num_namenodes = 2;
    options.num_datanodes = 3;
    auto cluster = *fs::MiniCluster::Start(options);

    constexpr int kThreads = 8;
    constexpr int kFilesPerThread = 160;
    std::vector<Histogram> per_thread(kThreads);
    std::vector<std::thread> threads;
    const int64_t wall_start = MonotonicMicros();
    int64_t total_ops = 0;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto client = cluster->NewClient(fs::NamenodePolicy::kSticky,
                                         "ab" + std::to_string(t),
                                         700 + static_cast<uint64_t>(t));
        auto timed = [&](const std::function<hops::Status()>& op) {
          const int64_t start = MonotonicMicros();
          hops::Status s = op();
          per_thread[static_cast<size_t>(t)].Record(
              static_cast<double>(MonotonicMicros() - start));
          if (!s.ok()) {
            std::fprintf(stderr, "table2 A/B op failed: %s\n", s.ToString().c_str());
            std::fflush(stderr);
            std::abort();
          }
        };
        const std::string base = "/table2_ab/t" + std::to_string(t);
        timed([&] { return client.Mkdirs(base); });
        for (int i = 0; i < kFilesPerThread; ++i) {
          const std::string dir = base + "/d" + std::to_string(i / 20);
          if (i % 20 == 0) timed([&] { return client.Mkdirs(dir); });
          const std::string file = dir + "/f" + std::to_string(i);
          timed([&] { return client.CreateFile(file); });
          if (i % 4 == 0) timed([&] { return client.SetPermission(file, 0640); });
        }
      });
      total_ops += 1 + kFilesPerThread + kFilesPerThread / 20 +
                   (kFilesPerThread + 3) / 4;
    }
    for (auto& th : threads) th.join();
    const int64_t ack_done = MonotonicMicros();
    // Applied throughput counts only transactions that actually committed:
    // the clock stops after the intent backlog fully drains.
    cluster->DrainIntents();
    const int64_t drain_done = MonotonicMicros();
    const double wall_s = static_cast<double>(drain_done - wall_start) / 1e6;
    std::printf("  [%s] ack phase %.0f ms, drain tail %.0f ms\n", async ? "async" : "sync",
                static_cast<double>(ack_done - wall_start) / 1e3,
                static_cast<double>(drain_done - ack_done) / 1e3);
    for (auto& h : per_thread) res.latency.Merge(h);
    res.applied_ops_per_sec = static_cast<double>(total_ops) / wall_s;
    res.intents = cluster->AggregateIntentStats();
    res.db_stats = cluster->db().StatsSnapshot();
    return res;
  };

  std::printf("\n# Async metadata commits: acknowledged latency vs sync (real cluster,\n"
              "# 2 namenodes x 4 handlers, 8 client threads, create/mkdir/chmod script;\n"
              "# applied ops/s clock includes draining the intent backlog)\n");
  auto sync_res = run_mode(false);
  auto async_res = run_mode(true);
  std::printf("%-10s %12s %12s %12s %16s\n", "mode", "mean us", "p99 us", "ops", "applied ops/s");
  std::printf("%-10s %12.0f %12.0f %12llu %16.0f\n", "sync", sync_res.latency.Mean(),
              sync_res.latency.Percentile(0.99),
              static_cast<unsigned long long>(sync_res.latency.count()),
              sync_res.applied_ops_per_sec);
  std::printf("%-10s %12.0f %12.0f %12llu %16.0f\n", "async", async_res.latency.Mean(),
              async_res.latency.Percentile(0.99),
              static_cast<unsigned long long>(async_res.latency.count()),
              async_res.applied_ops_per_sec);
  std::printf("async appended=%llu applied=%llu coalesced=%llu apply_failures=%llu\n",
              static_cast<unsigned long long>(async_res.intents.log.intents_appended),
              static_cast<unsigned long long>(async_res.intents.log.intents_applied),
              static_cast<unsigned long long>(async_res.intents.log.intents_coalesced),
              static_cast<unsigned long long>(async_res.intents.log.apply_failures));
  std::printf("async pipeline: ack (validate+append) mean %.0f us, apply (submit->commit) "
              "mean %.0f us\n",
              async_res.intents.MeanAckLatencyUs(), async_res.intents.MeanApplyLatencyUs());
  std::printf("\nshape: async acknowledged latency sits well below sync at comparable\n"
              "applied throughput -- the ack waits for one ordered log append instead of\n"
              "the full metadata transaction.\n");
  json.Metric("async_ack_mean_us", async_res.latency.Mean());
  json.Metric("async_ack_p99_us", async_res.latency.Percentile(0.99));
  json.Metric("async_applied_ops_per_sec", async_res.applied_ops_per_sec);
  json.Metric("sync_ack_mean_us", sync_res.latency.Mean());
  json.Metric("sync_ack_p99_us", sync_res.latency.Percentile(0.99));
  json.Metric("sync_applied_ops_per_sec", sync_res.applied_ops_per_sec);
  json.Metric("async_intents_appended",
              static_cast<double>(async_res.intents.log.intents_appended));
  json.Metric("async_intents_coalesced",
              static_cast<double>(async_res.intents.log.intents_coalesced));
  json.Metric("ack_speedup",
              async_res.latency.Mean() > 0
                  ? sync_res.latency.Mean() / async_res.latency.Mean()
                  : 0);
  // Concurrency-control pressure in the A/B clusters: under OCC the create
  // storm's parent-directory collisions show up as validation conflicts
  // (absorbed by RunTx's capped-backoff retries -- every op above still
  // succeeded); under 2PL the same collisions surface as lock waits.
  std::printf("engine counters [%s]: sync occ_conflicts=%llu lock_waits=%llu | "
              "async occ_conflicts=%llu lock_waits=%llu\n",
              std::string(kv::EngineKindName(bench::BenchEngineKind())).c_str(),
              static_cast<unsigned long long>(sync_res.db_stats.occ_conflicts),
              static_cast<unsigned long long>(sync_res.db_stats.lock_waits),
              static_cast<unsigned long long>(async_res.db_stats.occ_conflicts),
              static_cast<unsigned long long>(async_res.db_stats.lock_waits));
  json.EngineStats("sync_", sync_res.db_stats);
  json.EngineStats("async_", async_res.db_stats);

  // --- Engine ablation: contended create hotspot ----------------------------
  // The A/B script above gives each thread a private subtree, so neither
  // engine sees row contention. This section is the opposite extreme: every
  // thread creates in ONE shared directory and every transaction rewrites
  // the parent inode's mtime. Rerun with HOPS_KV_ENGINE=occ to compare how
  // each engine pays for the collision (lock waits vs validation retries).
  {
    auto hot = bench::RunContendedCreates(/*threads=*/8, /*files_per_thread=*/150,
                                          /*seed=*/23);
    std::printf("\n# Contended create hotspot: 8 threads x 150 creates, one directory [%s]\n",
                std::string(kv::EngineKindName(bench::BenchEngineKind())).c_str());
    std::printf("ops=%llu wall_ops_per_sec=%.0f occ_conflicts=%llu (key=%llu range=%llu) "
                "lock_waits=%llu lock_timeouts=%llu\n",
                static_cast<unsigned long long>(hot.ops), hot.ops_per_sec,
                static_cast<unsigned long long>(hot.db_stats.occ_conflicts),
                static_cast<unsigned long long>(hot.db_stats.occ_key_conflicts),
                static_cast<unsigned long long>(hot.db_stats.occ_range_conflicts),
                static_cast<unsigned long long>(hot.db_stats.lock_waits),
                static_cast<unsigned long long>(hot.db_stats.lock_timeouts));
    json.Metric("hotspot_ops_per_sec", hot.ops_per_sec);
    json.EngineStats("hotspot_", hot.db_stats);
  }

  // Deterministic collision probe (see bench_common.h): forces one
  // two-claimant collision per round so the OCC conflict/retry counters and
  // the 2PL lock-wait counters are reliably nonzero in the per-engine JSON.
  {
    auto probe = bench::RunContentionProbe(/*rounds=*/200);
    std::printf("\n# Contention probe: 200 forced two-claimant rounds on one row [%s]\n",
                std::string(kv::EngineKindName(bench::BenchEngineKind())).c_str());
    std::printf("us/round=%.1f retries=%llu occ_conflicts=%llu (key=%llu) lock_waits=%llu\n",
                probe.wall_us_per_round, static_cast<unsigned long long>(probe.retries),
                static_cast<unsigned long long>(probe.db_stats.occ_conflicts),
                static_cast<unsigned long long>(probe.db_stats.occ_key_conflicts),
                static_cast<unsigned long long>(probe.db_stats.lock_waits));
    json.Metric("probe_us_per_round", probe.wall_us_per_round);
    json.Metric("probe_retries", static_cast<double>(probe.retries));
    json.EngineStats("probe_", probe.db_stats);
  }
  return 0;
}
